"""The dynamic vector-clock cross-check: recorder semantics, the DAG
schedule validator, and the static-vs-dynamic contract on real engines
across calm, chaos, and compile-replay runs."""

from __future__ import annotations

import pytest

from repro.analysis.dynamic import DynamicRaceRecorder, clock_leq
from repro.analysis.races import analyze_plan
from repro.cluster.chaos import ChaosSchedule, MachineCrash
from repro.cluster.dagexec import execute_dag, vector_clocks
from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import HadoopScheduler, SimTask
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

VARIANTS = [
    ("folding", "variable"),
    ("randomized", "variable"),
    ("strawman", "variable"),
    ("rotating", "fixed"),
    ("coalescing", "append"),
]

MODES = {
    "variable": WindowMode.VARIABLE,
    "fixed": WindowMode.FIXED,
    "append": WindowMode.APPEND,
}


def make_engine(variant, mode, **kwargs):
    job = MapReduceJob(
        name="dynamic-check",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )
    window_mode = MODES[mode]
    return Slider(
        job,
        mode=window_mode,
        config=SliderConfig(tree=variant, mode=window_mode),
        **kwargs,
    )


def drive(engine, recorder, advances=3):
    """Run initial + advances with the recorder attached; returns the
    static race findings accumulated over every run's plan."""
    engine.executor.probe = recorder
    splits = [
        Split.from_records(
            [f"w{(i * 5 + j) % 9}" for j in range(12)], label=f"s{i}"
        )
        for i in range(4 + advances)
    ]
    removed = 0 if engine.mode is WindowMode.APPEND else 1
    results = [engine.initial_run(splits[:4])]
    for i in range(advances):
        results.append(engine.advance([splits[4 + i]], removed))
    static = []
    for result in results:
        if result.plan is not None:
            static.extend(analyze_plan(result.plan))
    return results, static


# -- clock semantics ---------------------------------------------------------


def test_clock_leq():
    assert clock_leq({"a": 1}, {"a": 2, "b": 1})
    assert not clock_leq({"a": 2}, {"a": 1})
    assert clock_leq({}, {"a": 1})


def test_map_steps_record_concurrent_distinct_slots():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("map", memo_uid=0x1)
    recorder.on_step("map", memo_uid=0x2)
    assert recorder.conflicts == []
    assert recorder.events == 2


def test_duplicate_map_slot_is_observed_conflict():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("map", memo_uid=0x9)
    recorder.on_step("map", memo_uid=0x9)
    assert len(recorder.conflicts) == 1
    assert recorder.conflicts[0].resource == "map_memo:0x9"
    assert not recorder.conflicts[0].benign


def test_run_boundary_is_a_barrier():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("first")
    recorder.on_step("map", memo_uid=0x9)
    recorder.on_begin_run("second")
    recorder.on_step("map", memo_uid=0x9)  # re-mapped next run: ordered
    assert recorder.conflicts == []


def test_same_reducer_combines_are_ordered():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("combine", reducer=0, memo_uid=0xA, hit=False)
    recorder.on_step("combine", reducer=0, memo_uid=0xA, hit=False)
    assert recorder.conflicts == []


def test_cross_reducer_memo_miss_is_benign_conflict():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("combine", reducer=0, memo_uid=0xA, hit=False)
    recorder.on_step("combine", reducer=1, memo_uid=0xA, hit=False)
    conflicts = [c for c in recorder.conflicts]
    assert conflicts and all(c.benign for c in conflicts)
    assert recorder.unexplained([]) == []  # benign: needs no static cover


def test_cross_reducer_memo_hits_do_not_conflict():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("combine", reducer=0, memo_uid=0xA, hit=True)
    recorder.on_step("combine", reducer=1, memo_uid=0xA, hit=True)
    assert recorder.conflicts == []  # both sides only read the slot


def test_unexplained_flags_conflicts_missing_from_static():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("map", memo_uid=0x9)
    recorder.on_step("map", memo_uid=0x9)
    assert len(recorder.unexplained([])) == 1
    static = analyze_plan(_duplicate_map_plan())
    assert recorder.unexplained(static) == []  # static saw it too


def _duplicate_map_plan():
    from repro.core.plan import Plan
    from repro.metrics import Phase

    plan = Plan()
    plan.step("map", label="m", phase=Phase.MAP, memo_uid=0x9)
    plan.step("map", label="m", phase=Phase.MAP, memo_uid=0x9)
    return plan


def test_to_findings_renders_severities():
    recorder = DynamicRaceRecorder()
    recorder.on_begin_run("r")
    recorder.on_step("map", memo_uid=0x9)
    recorder.on_step("map", memo_uid=0x9)
    recorder.on_step("combine", reducer=0, memo_uid=0xA, hit=False)
    recorder.on_step("combine", reducer=1, memo_uid=0xA, hit=False)
    rules = {f.rule: f.severity for f in recorder.to_findings()}
    assert rules["dynamic.race"] == "error"
    assert rules["dynamic.idempotent-write"] == "info"


# -- the static-vs-dynamic contract on real engines --------------------------


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_static_pass_covers_execution(variant, mode):
    engine = make_engine(variant, mode)
    recorder = DynamicRaceRecorder()
    results, static = drive(engine, recorder, advances=3)
    assert recorder.events > 0
    missed = recorder.unexplained(static)
    assert missed == [], [c.resource for c in missed]


def test_static_pass_covers_compile_replay():
    engine = make_engine("folding", "variable")
    recorder = DynamicRaceRecorder()
    results, static = drive(engine, recorder, advances=6)
    # Steady-state advances replay the compiled template; the probe must
    # still observe every step (plan_step fires in replay mode too).
    assert any(r.plan_cache_hit for r in results)
    assert recorder.unexplained(static) == []


def test_static_pass_covers_chaos_runs():
    chaos = ChaosSchedule(crashes=(MachineCrash(machine_id=1, time=2.0),))
    engine = make_engine(
        "folding",
        "variable",
        cluster=Cluster(
            ClusterConfig(
                num_machines=4, slots_per_machine=2, straggler_fraction=0.0
            )
        ),
        chaos=chaos,
    )
    recorder = DynamicRaceRecorder()
    results, static = drive(engine, recorder, advances=2)
    assert recorder.unexplained(static) == []


# -- DAG schedule vector clocks ----------------------------------------------


def quiet_cluster(n=4, slots=2):
    return Cluster(
        ClusterConfig(
            num_machines=n, slots_per_machine=slots, straggler_fraction=0.0
        )
    )


def test_schedule_clocks_respect_dependencies():
    tasks = [SimTask(label=f"t{i}", cost=1.0, kind="map") for i in range(4)]
    deps = {"t2": ["t0", "t1"], "t3": ["t2"]}
    report = execute_dag(tasks, deps, quiet_cluster(), HadoopScheduler())
    clocks, violations = vector_clocks(report.assignments, deps)
    assert violations == []
    assert set(clocks) == {"t0", "t1", "t2", "t3"}
    for child, parent_labels in deps.items():
        for parent in parent_labels:
            assert clock_leq(clocks[parent], clocks[child])
            assert clocks[parent] != clocks[child]


def test_schedule_clocks_under_chaos():
    tasks = [SimTask(label=f"t{i}", cost=1.0, kind="map") for i in range(6)]
    deps = {"t4": ["t0", "t1"], "t5": ["t2", "t3", "t4"]}
    chaos = ChaosSchedule(crashes=(MachineCrash(machine_id=0, time=1.0),))
    report = execute_dag(
        tasks, deps, quiet_cluster(3, 1), HadoopScheduler(), chaos=chaos
    )
    clocks, violations = vector_clocks(report.assignments, deps)
    assert violations == []
    for child, parent_labels in deps.items():
        for parent in parent_labels:
            assert clock_leq(clocks[parent], clocks[child])


def test_broken_schedule_is_flagged():
    from repro.cluster.exec_types import TaskAttempt

    t0 = SimTask(label="t0", cost=5.0, kind="map")
    t1 = SimTask(label="t1", cost=1.0, kind="map")
    assignments = [
        TaskAttempt(
            task=t0, number=0, machine_id=0, slot_index=0, epoch=0,
            start=0.0, expected_finish=5.0, finish=5.0,
        ),
        TaskAttempt(  # starts before its parent finishes
            task=t1, number=0, machine_id=1, slot_index=0, epoch=0,
            start=1.0, expected_finish=2.0, finish=2.0,
        ),
    ]
    clocks, violations = vector_clocks(assignments, {"t1": ["t0"]})
    assert violations and "before parent" in violations[0]

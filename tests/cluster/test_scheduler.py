"""Unit tests for the scheduling policies and wave simulator."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import (
    HadoopScheduler,
    HybridScheduler,
    MemoizationScheduler,
    SimTask,
    simulate_two_waves,
    simulate_wave,
)


def quiet_cluster(n=4, slots=1, **kwargs) -> Cluster:
    return Cluster(
        ClusterConfig(
            num_machines=n, slots_per_machine=slots, straggler_fraction=0.0, **kwargs
        )
    )


def test_single_task_makespan_is_duration():
    cluster = quiet_cluster()
    makespan, log = simulate_wave(
        [SimTask("t", cost=10.0)], cluster, HadoopScheduler()
    )
    assert makespan == 10.0
    assert len(log) == 1


def test_parallel_tasks_spread_over_machines():
    cluster = quiet_cluster(n=4)
    tasks = [SimTask(f"t{i}", cost=10.0) for i in range(4)]
    makespan, log = simulate_wave(tasks, cluster, HadoopScheduler())
    assert makespan == 10.0
    assert len({a.machine_id for a in log}) == 4


def test_more_tasks_than_slots_queue():
    cluster = quiet_cluster(n=2, slots=1)
    tasks = [SimTask(f"t{i}", cost=10.0) for i in range(4)]
    makespan, _ = simulate_wave(tasks, cluster, HadoopScheduler())
    assert makespan == 20.0


def test_dead_machines_are_skipped():
    cluster = quiet_cluster(n=2, slots=1)
    cluster.kill(0)
    makespan, log = simulate_wave(
        [SimTask("a", 5.0), SimTask("b", 5.0)], cluster, HadoopScheduler()
    )
    assert makespan == 10.0
    assert all(a.machine_id == 1 for a in log)


def test_memoization_scheduler_honors_affinity():
    cluster = quiet_cluster(n=4)
    tasks = [
        SimTask(f"r{i}", cost=5.0, preferred_machine=2, fetch_bytes=100.0)
        for i in range(3)
    ]
    _, log = simulate_wave(tasks, cluster, MemoizationScheduler())
    assert all(a.machine_id == 2 for a in log)
    assert not any(a.fetched for a in log)


def test_hadoop_scheduler_fetches_remote_state():
    """First-free-slot placement pays the network fetch for memoized state."""
    cluster = quiet_cluster(n=4)
    tasks = [
        SimTask(f"r{i}", cost=5.0, preferred_machine=0, fetch_bytes=100.0)
        for i in range(4)
    ]
    _, log = simulate_wave(tasks, cluster, HadoopScheduler())
    fetched = [a for a in log if a.fetched]
    assert fetched  # spread across machines -> some remote reads
    expected_penalty = 100.0 * cluster.config.network_cost_per_byte
    for a in fetched:
        assert a.finish - a.start == pytest.approx(5.0 + expected_penalty)


def test_hybrid_migrates_off_stragglers():
    cluster = quiet_cluster(n=3)
    cluster.machine(0).straggle = 0.2  # heavy straggler holding the state
    task = SimTask("r", cost=10.0, preferred_machine=0, fetch_bytes=10.0)
    _, log = simulate_wave([task], cluster, HybridScheduler())
    assert log[0].machine_id != 0
    assert log[0].fetched


def test_hybrid_stays_local_when_machine_healthy():
    cluster = quiet_cluster(n=3)
    task = SimTask("r", cost=10.0, preferred_machine=1, fetch_bytes=10.0)
    _, log = simulate_wave([task], cluster, HybridScheduler())
    assert log[0].machine_id == 1
    assert not log[0].fetched


def test_hybrid_migrates_when_preferred_backed_up():
    cluster = quiet_cluster(n=2, slots=1)
    tasks = [
        SimTask(f"r{i}", cost=10.0, preferred_machine=0, fetch_bytes=1.0)
        for i in range(4)
    ]
    _, log = simulate_wave(tasks, cluster, HybridScheduler(patience=2.0))
    used = {a.machine_id for a in log}
    assert used == {0, 1}  # overflow migrated instead of queueing forever


def test_hybrid_beats_strict_memoization_under_stragglers():
    """The Table 1 effect: hybrid <= strict affinity when nodes straggle."""
    def build():
        cluster = quiet_cluster(n=4, slots=1)
        cluster.machine(0).straggle = 0.25
        tasks = [
            SimTask(f"r{i}", cost=10.0, preferred_machine=0, fetch_bytes=5.0)
            for i in range(4)
        ]
        return cluster, tasks

    cluster, tasks = build()
    strict_time, _ = simulate_wave(tasks, cluster, MemoizationScheduler())
    cluster, tasks = build()
    hybrid_time, _ = simulate_wave(tasks, cluster, HybridScheduler())
    assert hybrid_time < strict_time


def test_two_waves_are_sequential():
    cluster = quiet_cluster(n=2)
    maps = [SimTask("m", 10.0, kind="map")]
    reduces = [SimTask("r", 5.0)]
    makespan, log = simulate_two_waves(maps, reduces, cluster, HadoopScheduler())
    assert makespan == 15.0
    reduce_log = [a for a in log if a.task.label == "r"]
    assert reduce_log[0].start == 10.0


def test_map_locality_preferred_by_hadoop():
    cluster = quiet_cluster(n=4)
    task = SimTask("m", cost=5.0, preferred_machine=3, fetch_bytes=50.0, kind="map")
    _, log = simulate_wave([task], cluster, HadoopScheduler())
    assert log[0].machine_id == 3
    assert not log[0].fetched

"""Unit tests for machines and cluster construction."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig, Machine
from repro.common.errors import SchedulingError


def test_machine_duration_scales_with_speed():
    fast = Machine(0, speed=2.0)
    slow = Machine(1, speed=0.5)
    assert fast.duration_for(10.0) == 5.0
    assert slow.duration_for(10.0) == 20.0


def test_dead_machine_rejects_execution():
    machine = Machine(0, alive=False)
    with pytest.raises(SchedulingError):
        machine.effective_speed()


def test_straggler_slows_machine():
    machine = Machine(0, speed=1.0, straggle=0.5)
    assert machine.duration_for(10.0) == 20.0


def test_cluster_builds_configured_machines():
    cluster = Cluster(ClusterConfig(num_machines=5, slots_per_machine=3))
    assert len(cluster) == 5
    assert all(m.slots == 3 for m in cluster.machines)


def test_cluster_requires_machines():
    with pytest.raises(SchedulingError):
        Cluster(ClusterConfig(num_machines=0))


def test_straggler_assignment_is_deterministic():
    a = Cluster(ClusterConfig(num_machines=24, seed=9))
    b = Cluster(ClusterConfig(num_machines=24, seed=9))
    ids_a = [m.machine_id for m in a.machines if m.straggle < 1.0]
    ids_b = [m.machine_id for m in b.machines if m.straggle < 1.0]
    assert ids_a == ids_b
    assert ids_a  # 8% of 24 rounds to 2 stragglers


def test_kill_and_revive():
    cluster = Cluster(ClusterConfig(num_machines=3, straggler_fraction=0.0))
    cluster.kill(1)
    assert [m.machine_id for m in cluster.alive_machines()] == [0, 2]
    cluster.revive(1)
    assert len(cluster.alive_machines()) == 3


def test_all_dead_raises():
    cluster = Cluster(ClusterConfig(num_machines=2, straggler_fraction=0.0))
    cluster.kill(0)
    cluster.kill(1)
    with pytest.raises(SchedulingError):
        cluster.alive_machines()

"""Unit tests for machines and cluster construction."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig, Machine
from repro.common.errors import SchedulingError


def test_machine_duration_scales_with_speed():
    fast = Machine(0, speed=2.0)
    slow = Machine(1, speed=0.5)
    assert fast.duration_for(10.0) == 5.0
    assert slow.duration_for(10.0) == 20.0


def test_dead_machine_rejects_execution():
    machine = Machine(0, alive=False)
    with pytest.raises(SchedulingError):
        machine.effective_speed()


def test_straggler_slows_machine():
    machine = Machine(0, speed=1.0, straggle=0.5)
    assert machine.duration_for(10.0) == 20.0


def test_cluster_builds_configured_machines():
    cluster = Cluster(ClusterConfig(num_machines=5, slots_per_machine=3))
    assert len(cluster) == 5
    assert all(m.slots == 3 for m in cluster.machines)


def test_cluster_requires_machines():
    with pytest.raises(SchedulingError):
        Cluster(ClusterConfig(num_machines=0))


def test_straggler_assignment_is_deterministic():
    a = Cluster(ClusterConfig(num_machines=24, seed=9))
    b = Cluster(ClusterConfig(num_machines=24, seed=9))
    ids_a = [m.machine_id for m in a.machines if m.straggle < 1.0]
    ids_b = [m.machine_id for m in b.machines if m.straggle < 1.0]
    assert ids_a == ids_b
    assert ids_a  # 8% of 24 rounds to 2 stragglers


def test_kill_and_revive():
    cluster = Cluster(ClusterConfig(num_machines=3, straggler_fraction=0.0))
    cluster.kill(1)
    assert [m.machine_id for m in cluster.alive_machines()] == [0, 2]
    cluster.revive(1)
    assert len(cluster.alive_machines()) == 3


def test_all_dead_raises():
    cluster = Cluster(ClusterConfig(num_machines=2, straggler_fraction=0.0))
    cluster.kill(0)
    cluster.kill(1)
    with pytest.raises(SchedulingError):
        cluster.alive_machines()


def test_kill_unknown_machine_raises_scheduling_error():
    cluster = Cluster(ClusterConfig(num_machines=3, straggler_fraction=0.0))
    for bogus in (-1, 3, 99):
        with pytest.raises(SchedulingError):
            cluster.kill(bogus)
        with pytest.raises(SchedulingError):
            cluster.revive(bogus)
        with pytest.raises(SchedulingError):
            cluster.machine(bogus)


def test_kill_dead_machine_warns_and_is_noop():
    cluster = Cluster(ClusterConfig(num_machines=2, straggler_fraction=0.0))
    cluster.kill(0)
    with pytest.warns(RuntimeWarning, match="already dead"):
        cluster.kill(0)
    assert not cluster.machine(0).alive
    assert cluster.machine(1).alive


def test_revive_alive_machine_warns_and_is_noop():
    cluster = Cluster(ClusterConfig(num_machines=2, straggler_fraction=0.0))
    with pytest.warns(RuntimeWarning, match="already alive"):
        cluster.revive(0)
    assert cluster.machine(0).alive


def test_assign_stragglers_skips_dead_machines():
    cluster = Cluster(
        ClusterConfig(num_machines=10, straggler_fraction=0.3, seed=4)
    )
    for machine_id in (0, 1, 2):
        cluster.kill(machine_id)
    for _ in range(20):
        ids = cluster.assign_stragglers()
        assert ids, "straggler budget should still be spent"
        assert all(cluster.machine(i).alive for i in ids)

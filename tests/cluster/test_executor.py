"""Unit tests for the event-driven fault-tolerant executor."""

import pytest

from repro.cluster.chaos import (
    ChaosSchedule,
    MachineCrash,
    StraggleEpisode,
    TransientFaults,
)
from repro.cluster.executor import (
    AttemptState,
    ExecutorConfig,
    ExecutorHooks,
    execute_two_waves,
    execute_wave,
)
from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import (
    HadoopScheduler,
    HybridScheduler,
    MemoizationScheduler,
    SimTask,
    simulate_wave,
)
from repro.common.errors import SchedulingError, TaskFailedError
from repro.common.rng import RngStream

POLICIES = [HadoopScheduler, MemoizationScheduler, HybridScheduler]


def quiet_cluster(n=4, slots=2, **kwargs) -> Cluster:
    return Cluster(
        ClusterConfig(
            num_machines=n,
            slots_per_machine=slots,
            straggler_fraction=0.0,
            **kwargs,
        )
    )


def greedy_reference(tasks, cluster, scheduler, start_time=0.0):
    """The original static list scheduler, kept as the equivalence oracle."""
    free_times = [
        [start_time] * m.slots if m.alive else [] for m in cluster.machines
    ]
    log = []
    finish_time = start_time
    for task in sorted(tasks, key=lambda t: (-t.cost, t.label)):
        machine_id, slot_index = scheduler.choose(task, free_times, cluster)
        machine = cluster.machine(machine_id)
        start = free_times[machine_id][slot_index]
        fetched = (
            task.preferred_machine is not None
            and task.preferred_machine != machine_id
        )
        duration = machine.duration_for(task.cost)
        if fetched:
            duration += task.fetch_bytes * cluster.config.network_cost_per_byte
        finish = start + duration
        free_times[machine_id][slot_index] = finish
        log.append((task.label, machine_id, start, finish, fetched))
        finish_time = max(finish_time, finish)
    return finish_time, log


def random_instance(case):
    rng = RngStream(case, "executor-equiv")
    n = int(rng.integers(1, 7))
    slots = int(rng.integers(1, 4))
    cluster = Cluster(
        ClusterConfig(
            num_machines=n,
            slots_per_machine=slots,
            straggler_fraction=0.0,
            seed=case,
        )
    )
    for machine in cluster.machines:
        if rng.coin(0.2):
            machine.straggle = float(rng.uniform(0.2, 1.0))
    for machine in cluster.machines[1:]:
        if rng.coin(0.15):
            machine.alive = False
    tasks = []
    for i in range(int(rng.integers(1, 16))):
        preferred = int(rng.integers(0, n)) if rng.coin(0.6) else None
        tasks.append(
            SimTask(
                f"t{i}",
                cost=float(rng.uniform(0.5, 20.0)),
                preferred_machine=preferred,
                fetch_bytes=float(rng.uniform(0, 200)),
                kind="map" if rng.coin(0.4) else "task",
            )
        )
    return cluster, tasks


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("case", range(25))
def test_fault_free_execution_matches_greedy_plan(case, policy):
    """With no chaos, the executor IS the greedy planner, bit for bit."""
    cluster, tasks = random_instance(case)
    scheduler = policy()
    expected_makespan, expected_log = greedy_reference(
        tasks, cluster, scheduler
    )
    makespan, log = simulate_wave(tasks, cluster, scheduler)
    assert makespan == expected_makespan
    assert [
        (a.task.label, a.machine_id, a.start, a.finish, a.fetched)
        for a in log
    ] == expected_log


@pytest.mark.parametrize("policy", POLICIES)
def test_mid_wave_crash_completes_all_tasks(policy):
    """A mid-wave crash under every policy still finishes every task, and
    the recovery cost is visible in the stats."""
    tasks = [
        SimTask(f"t{i}", cost=10.0, preferred_machine=i % 4, fetch_bytes=25.0)
        for i in range(12)
    ]
    calm = execute_wave(tasks, quiet_cluster(), policy())
    cluster = quiet_cluster()
    chaos = ChaosSchedule(crashes=[MachineCrash(time=4.0, machine_id=1)])
    report = execute_wave(tasks, cluster, policy(), chaos=chaos)
    assert {a.task.label for a in report.assignments} == {
        t.label for t in tasks
    }
    assert {a.task.label for a in calm.assignments} == {t.label for t in tasks}
    assert report.stats.crashes == 1
    assert report.stats.crashes_detected == 1
    assert report.stats.lost_attempts >= 1
    assert report.stats.re_executed_attempts() >= 1
    assert report.stats.detection_delay > 0
    assert report.makespan >= calm.makespan
    # the dead machine hosts nothing after detection
    for attempt in report.attempts:
        if attempt.machine_id == 1 and attempt.state is AttemptState.FINISHED:
            assert attempt.finish <= 4.0 + ExecutorConfig().heartbeat_timeout


def test_crash_detection_waits_for_heartbeat_timeout():
    config = ExecutorConfig(heartbeat_timeout=5.0)
    cluster = quiet_cluster(n=2, slots=1)
    tasks = [SimTask("a", cost=20.0, preferred_machine=0), SimTask("b", 20.0)]
    chaos = ChaosSchedule(crashes=[MachineCrash(time=2.0, machine_id=0)])
    report = execute_wave(tasks, cluster, MemoizationScheduler(),
                          config=config, chaos=chaos)
    assert report.stats.lost_attempts == 1
    # detection happened exactly heartbeat_timeout after the crash
    assert report.stats.detection_delay == pytest.approx(5.0)
    lost = [a for a in report.attempts if a.state is AttemptState.LOST]
    assert lost and all(a.finish == pytest.approx(7.0) for a in lost)


def test_transient_failures_retry_with_backoff():
    cluster = quiet_cluster()
    tasks = [SimTask(f"t{i}", cost=5.0) for i in range(8)]
    chaos = ChaosSchedule(transient=TransientFaults(probability=0.3), seed=3)
    report = execute_wave(tasks, cluster, HadoopScheduler(), chaos=chaos)
    assert len(report.assignments) == 8
    assert report.stats.transient_failures >= 1
    assert report.stats.backoff_delay > 0
    assert report.stats.wasted_work > 0


def test_exhausted_attempts_raise_typed_error():
    cluster = quiet_cluster()
    chaos = ChaosSchedule(transient=TransientFaults(probability=1.0), seed=1)
    with pytest.raises(TaskFailedError) as excinfo:
        execute_wave(
            [SimTask("doomed", cost=4.0)],
            cluster,
            HadoopScheduler(),
            config=ExecutorConfig(max_attempts=3),
            chaos=chaos,
        )
    assert excinfo.value.label == "doomed"
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value, SchedulingError)


def test_speculation_cuts_makespan_on_straggler_heavy_cluster():
    """LATE-style backups rescue tasks stuck on a crawling machine."""
    def straggler_cluster():
        cluster = quiet_cluster(n=6, slots=2)
        cluster.machines[0].straggle = 0.1
        return cluster

    tasks = [
        SimTask(f"s{i}", cost=8.0, preferred_machine=0 if i < 2 else 2 + i % 4)
        for i in range(8)
    ]
    off = execute_wave(
        tasks, straggler_cluster(), MemoizationScheduler(),
        config=ExecutorConfig(speculation=False),
    )
    on = execute_wave(
        tasks, straggler_cluster(), MemoizationScheduler(),
        config=ExecutorConfig(speculation=True),
    )
    assert on.makespan < off.makespan / 2
    assert on.stats.speculative_attempts >= 1
    assert on.stats.speculative_wins >= 1
    # losers were killed, and their runtime is accounted as waste
    killed = [a for a in on.attempts if a.state is AttemptState.KILLED]
    assert killed
    assert on.stats.speculative_waste > 0


def test_recovered_machine_takes_new_work():
    cluster = quiet_cluster(n=2, slots=1)
    tasks = [SimTask(f"t{i}", cost=6.0) for i in range(6)]
    chaos = ChaosSchedule(
        crashes=[MachineCrash(time=1.0, machine_id=1, recover_at=12.0)]
    )
    report = execute_wave(tasks, cluster, HadoopScheduler(), chaos=chaos)
    assert report.stats.recoveries == 1
    assert cluster.machines[1].alive
    assert len(report.assignments) == 6
    late_on_revived = [
        a
        for a in report.assignments
        if a.machine_id == 1 and a.start >= 12.0
    ]
    assert late_on_revived, "revived machine should run tasks again"


def test_straggle_episode_slows_then_restores():
    cluster = quiet_cluster(n=1, slots=1)
    tasks = [SimTask(f"t{i}", cost=4.0) for i in range(3)]
    chaos = ChaosSchedule(
        straggles=[StraggleEpisode(machine_id=0, start=4.0, end=8.0, factor=0.5)]
    )
    report = execute_wave(tasks, cluster, HadoopScheduler(), chaos=chaos)
    # 4s at full speed, the second task runs (at least partly) at half
    # speed, so the wave takes longer than the calm 12s
    assert report.makespan > 12.0
    assert cluster.machines[0].straggle == 1.0  # restored afterwards


def test_two_wave_execution_keeps_barrier_under_chaos():
    cluster = quiet_cluster()
    maps = [SimTask(f"m{i}", cost=6.0, kind="map") for i in range(8)]
    reduces = [SimTask(f"r{i}", cost=4.0, kind="reduce") for i in range(4)]
    chaos = ChaosSchedule(crashes=[MachineCrash(time=2.0, machine_id=0)])
    report = execute_two_waves(maps, reduces, cluster, HybridScheduler(),
                               chaos=chaos)
    map_finishes = [
        a.finish for a in report.assignments if a.task.kind == "map"
    ]
    reduce_starts = [
        a.start for a in report.assignments if a.task.kind == "reduce"
    ]
    assert len(map_finishes) == 8 and len(reduce_starts) == 4
    assert max(map_finishes) == report.map_finish
    assert min(reduce_starts) >= report.map_finish
    assert report.makespan >= report.map_finish


def test_hooks_fire_in_crash_detect_order():
    cluster = quiet_cluster()
    events = []
    hooks = ExecutorHooks(
        on_crash=lambda m, t: events.append(("crash", m, t)),
        on_detect=lambda m, t: events.append(("detect", m, t)),
        on_recover=lambda m, t: events.append(("recover", m, t)),
    )
    chaos = ChaosSchedule(
        crashes=[MachineCrash(time=3.0, machine_id=2, recover_at=9.0)]
    )
    execute_wave(
        [SimTask(f"t{i}", cost=8.0) for i in range(10)],
        cluster,
        HadoopScheduler(),
        chaos=chaos,
        hooks=hooks,
    )
    kinds = [e[0] for e in events]
    assert kinds == ["crash", "detect", "recover"]
    assert events[0][2] == pytest.approx(3.0)
    assert events[1][2] == pytest.approx(3.0 + ExecutorConfig().heartbeat_timeout)
    assert events[2][2] == pytest.approx(9.0)


def test_all_machines_dead_raises():
    cluster = quiet_cluster(n=1, slots=1)
    chaos = ChaosSchedule(crashes=[MachineCrash(time=1.0, machine_id=0)])
    with pytest.raises(SchedulingError):
        execute_wave(
            [SimTask("t", cost=10.0)], cluster, HadoopScheduler(), chaos=chaos
        )


def test_same_chaos_seed_reproduces_recovery_trace():
    tasks = [SimTask(f"t{i}", cost=7.0, preferred_machine=i % 3) for i in range(9)]

    def run():
        cluster = quiet_cluster(n=3, slots=2)
        chaos = ChaosSchedule.random(
            cluster, seed=21, horizon=10.0, transient_rate=0.2
        )
        report = execute_wave(tasks, cluster, HybridScheduler(), chaos=chaos)
        return (
            report.makespan,
            [(a.task.label, a.machine_id, a.start, a.finish)
             for a in report.assignments],
            report.stats.as_dict(),
        )

    assert run() == run()

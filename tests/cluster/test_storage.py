"""Unit tests for the HDFS-like block store."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.storage import BlockStore
from repro.mapreduce.types import make_splits


def quiet_cluster(n=6) -> Cluster:
    return Cluster(ClusterConfig(num_machines=n, straggler_fraction=0.0))


def splits(count=5):
    return make_splits([f"line {i}" for i in range(count * 2)], split_size=2)


def test_store_places_replicas_on_distinct_machines():
    store = BlockStore(quiet_cluster(), replication=3)
    for split in splits():
        info = store.store_split(split)
        assert len(info.replicas) == 3
        assert len(set(info.replicas)) == 3


def test_store_is_idempotent():
    store = BlockStore(quiet_cluster())
    split = splits(1)[0]
    a = store.store_split(split)
    b = store.store_split(split)
    assert a is b
    assert store.total_blocks() == 1


def test_replication_capped_by_cluster_size():
    store = BlockStore(quiet_cluster(n=2), replication=3)
    info = store.store_split(splits(1)[0])
    assert len(info.replicas) == 2


def test_preferred_machine_is_a_replica():
    store = BlockStore(quiet_cluster())
    split = splits(1)[0]
    store.store_split(split)
    preferred = store.preferred_machine(split.uid)
    assert preferred in store.replicas_of(split.uid)
    assert store.is_local(split.uid, preferred)


def test_unknown_block_has_no_locality():
    store = BlockStore(quiet_cluster())
    assert store.preferred_machine(12345) is None
    assert store.replicas_of(12345) == []


def test_failure_triggers_rereplication():
    cluster = quiet_cluster()
    store = BlockStore(cluster, replication=3)
    store.store_all(splits(10))
    victim = store.replicas_of(splits(10)[0].uid)[0]

    lost_blocks = store.blocks_on(victim)
    cluster.kill(victim)
    repaired = store.on_machine_failure(victim)
    assert repaired == len(lost_blocks)
    for split in splits(10):
        replicas = store.replicas_of(split.uid)
        assert victim not in replicas
        assert len(replicas) == 3


def test_preferred_machine_skips_dead_replica():
    cluster = quiet_cluster()
    store = BlockStore(cluster, replication=2)
    split = splits(1)[0]
    store.store_split(split)
    first = store.preferred_machine(split.uid)
    cluster.kill(first)
    # Without repair, the preferred machine falls through to a live replica.
    fallback = store.preferred_machine(split.uid)
    assert fallback != first
    assert fallback is not None


def test_drop_split_frees_storage():
    store = BlockStore(quiet_cluster())
    split = splits(1)[0]
    store.store_split(split)
    assert store.stored_bytes() > 0
    store.drop_split(split.uid)
    assert store.total_blocks() == 0
    assert store.stored_bytes() == 0.0


def test_validation():
    with pytest.raises(ValueError):
        BlockStore(quiet_cluster(), replication=0)


def test_slider_integration_uses_block_locality():
    from repro.mapreduce.combiners import SumCombiner
    from repro.mapreduce.job import MapReduceJob
    from repro.slider.system import Slider
    from repro.slider.window import WindowMode

    cluster = quiet_cluster()
    job = MapReduceJob(
        name="wc",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=2,
    )
    slider = Slider(job, WindowMode.VARIABLE, cluster=cluster)
    window = splits(8)
    slider.initial_run(window)
    assert slider.blocks.total_blocks() == len(window)
    # GC drops blocks for splits that left the window.
    slider.advance(make_splits(["new a", "new b"], 1), removed=4)
    assert slider.blocks.total_blocks() == len(window) - 4 + 2

"""Unit tests for dependency-aware DAG execution."""

import pytest

from repro.cluster.chaos import ChaosSchedule, MachineCrash
from repro.cluster.executor import (
    critical_path_priority,
    execute_dag,
    execute_two_waves,
)
from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import HadoopScheduler, HybridScheduler, SimTask
from repro.common.errors import SchedulingError


def quiet_cluster(n=4, slots=2, **kwargs) -> Cluster:
    return Cluster(
        ClusterConfig(
            num_machines=n,
            slots_per_machine=slots,
            straggler_fraction=0.0,
            **kwargs,
        )
    )


def task(label, cost=1.0, kind="map", preferred=None):
    return SimTask(label=label, cost=cost, kind=kind,
                   preferred_machine=preferred)


class TestCriticalPathPriority:
    def test_chain_accumulates_downward(self):
        tasks = [task("a", 1.0), task("b", 2.0), task("c", 4.0)]
        parents = {"b": ("a",), "c": ("b",)}
        priority = critical_path_priority(tasks, parents)
        assert priority == {"c": 4.0, "b": 6.0, "a": 7.0}

    def test_diamond_takes_heavier_branch(self):
        tasks = [task("a", 1.0), task("b", 10.0), task("c", 2.0),
                 task("d", 3.0)]
        parents = {"b": ("a",), "c": ("a",), "d": ("b", "c")}
        priority = critical_path_priority(tasks, parents)
        assert priority["a"] == 14.0
        assert priority["b"] == 13.0
        assert priority["c"] == 5.0

    def test_cycle_raises(self):
        tasks = [task("a"), task("b")]
        with pytest.raises(SchedulingError, match="cycle"):
            critical_path_priority(tasks, {"a": ("b",), "b": ("a",)})


class TestExecuteDag:
    def test_chain_is_serialised(self):
        """Dependencies gate readiness: a 3-task chain of unit tasks takes
        3 time units no matter how many slots are free."""
        tasks = [task(f"t{i}", 1.0) for i in range(3)]
        deps = {"t1": ["t0"], "t2": ["t1"]}
        report = execute_dag(tasks, deps, quiet_cluster(8), HadoopScheduler())
        assert report.makespan == pytest.approx(3.0)

    def test_independent_tasks_run_in_parallel(self):
        tasks = [task(f"t{i}", 1.0) for i in range(6)]
        report = execute_dag(tasks, {}, quiet_cluster(4, 2), HadoopScheduler())
        assert report.makespan == pytest.approx(1.0)

    def test_makespan_at_least_critical_path(self):
        tasks = [task("a", 2.0), task("b", 3.0), task("c", 1.0),
                 task("d", 4.0)]
        deps = {"c": ["a", "b"], "d": ["c"]}
        report = execute_dag(tasks, deps, quiet_cluster(), HadoopScheduler())
        # Heaviest chain: b(3) -> c(1) -> d(4) = 8.
        assert report.makespan >= 8.0 - 1e-9

    def test_dependent_starts_after_its_deps_finish(self):
        tasks = [task("a", 2.0), task("b", 5.0), task("c", 1.0)]
        deps = {"c": ["a", "b"]}
        report = execute_dag(tasks, deps, quiet_cluster(), HadoopScheduler())
        finish = {a.task.label: a.finish for a in report.assignments}
        start = {a.task.label: a.start for a in report.assignments}
        assert start["c"] >= max(finish["a"], finish["b"]) - 1e-9

    def test_critical_path_scheduled_first(self):
        """With one slot, the head of the heavy chain runs before an
        equal-cost task with nothing below it."""
        tasks = [task("heavy-head", 1.0), task("tail", 9.0),
                 task("loner", 1.0)]
        deps = {"tail": ["heavy-head"]}
        report = execute_dag(
            tasks, deps, quiet_cluster(1, 1), HadoopScheduler()
        )
        start = {a.task.label: a.start for a in report.assignments}
        assert start["heavy-head"] < start["loner"]
        assert report.makespan == pytest.approx(11.0)

    def test_no_barrier_beats_two_waves(self):
        """A reduce whose inputs are ready early starts before the last
        map finishes — impossible under the two-wave barrier."""
        maps = [task(f"m{i}", 1.0) for i in range(2)] + [task("m-slow", 10.0)]
        reduces = [task("r0", 5.0, kind="reduce"),
                   task("r1", 5.0, kind="reduce")]
        deps = {"r0": ["m0"], "r1": ["m1"]}
        cluster_a, cluster_b = quiet_cluster(4), quiet_cluster(4)
        dag = execute_dag(
            maps + reduces, deps, cluster_a, HadoopScheduler()
        )
        waves = execute_two_waves(
            maps, reduces, cluster_b, HadoopScheduler()
        )
        assert dag.makespan < waves.makespan

    def test_duplicate_label_rejected(self):
        with pytest.raises(SchedulingError, match="duplicate"):
            execute_dag(
                [task("x"), task("x")], {}, quiet_cluster(), HadoopScheduler()
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(SchedulingError, match="unknown"):
            execute_dag(
                [task("a")], {"a": ["ghost"]}, quiet_cluster(),
                HadoopScheduler(),
            )

    def test_unknown_dependent_rejected(self):
        with pytest.raises(SchedulingError, match="unknown"):
            execute_dag(
                [task("a")], {"ghost": ["a"]}, quiet_cluster(),
                HadoopScheduler(),
            )

    def test_cycle_rejected(self):
        with pytest.raises(SchedulingError, match="cycle"):
            execute_dag(
                [task("a"), task("b")],
                {"a": ["b"], "b": ["a"]},
                quiet_cluster(),
                HadoopScheduler(),
            )

    def test_deterministic(self):
        tasks = [task(f"t{i}", float(1 + i % 3)) for i in range(12)]
        deps = {f"t{i}": [f"t{i - 3}"] for i in range(3, 12)}
        runs = [
            execute_dag(tasks, dict(deps), quiet_cluster(3), HybridScheduler())
            for _ in range(2)
        ]
        assert runs[0].makespan == runs[1].makespan
        assert [a.machine_id for a in runs[0].assignments] == [
            a.machine_id for a in runs[1].assignments
        ]

    def test_zero_cost_tasks_complete(self):
        tasks = [task("a", 0.0), task("b", 0.0), task("c", 1.0)]
        deps = {"b": ["a"], "c": ["b"]}
        report = execute_dag(tasks, deps, quiet_cluster(), HadoopScheduler())
        assert report.makespan == pytest.approx(1.0)
        assert len(report.assignments) == 3

    def test_map_finish_tracks_map_kind(self):
        tasks = [task("m", 2.0, kind="map"),
                 task("r", 3.0, kind="reduce")]
        report = execute_dag(
            tasks, {"r": ["m"]}, quiet_cluster(), HadoopScheduler()
        )
        assert report.map_finish == pytest.approx(2.0)
        assert report.makespan == pytest.approx(5.0)

    def test_survives_machine_crash(self):
        """A crash mid-DAG loses the running attempt; the task retries and
        the DAG still completes with every assignment present."""
        tasks = [task(f"t{i}", 4.0) for i in range(4)]
        deps = {"t3": ["t0", "t1", "t2"]}
        chaos = ChaosSchedule(
            crashes=(MachineCrash(machine_id=0, time=1.0),)
        )
        report = execute_dag(
            tasks, deps, quiet_cluster(3, 1), HadoopScheduler(), chaos=chaos
        )
        assert len(report.assignments) == 4
        assert report.stats.crashes == 1
        assert report.stats.lost_attempts >= 1
        finish = {a.task.label: a.finish for a in report.assignments}
        start = {a.task.label: a.start for a in report.assignments}
        assert start["t3"] >= max(finish[f"t{i}"] for i in range(3)) - 1e-9

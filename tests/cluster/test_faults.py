"""Unit tests for fault injection."""

from repro.cluster.cache import DistributedMemoCache
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.machine import Cluster, ClusterConfig
from repro.core.partition import Partition


def quiet_cluster(n=6) -> Cluster:
    return Cluster(ClusterConfig(num_machines=n, straggler_fraction=0.0))


def test_plan_is_deterministic():
    cluster = quiet_cluster()
    a = FaultPlan.random(cluster, runs=10, crash_probability=0.3, seed=5)
    b = FaultPlan.random(cluster, runs=10, crash_probability=0.3, seed=5)
    assert a.crashes == b.crashes


def test_zero_probability_never_crashes():
    cluster = quiet_cluster()
    plan = FaultPlan.random(cluster, runs=10, crash_probability=0.0)
    assert plan.crashes == {}


def test_injector_kills_and_heals():
    cluster = quiet_cluster(n=3)
    plan = FaultPlan(crashes={0: [1], 1: [2]})
    injector = FaultInjector(cluster, plan=plan, heal=True)

    assert injector.before_run(0) == [1]
    assert not cluster.machine(1).alive

    assert injector.before_run(1) == [2]
    assert cluster.machine(1).alive  # healed
    assert not cluster.machine(2).alive


def test_injector_counts_lost_cache_objects():
    cluster = quiet_cluster(n=3)
    cache = DistributedMemoCache(cluster)
    # Place objects until some land on machine 0.
    uids_on_0 = []
    for uid in range(30):
        cache.put(uid, Partition({"k": uid}))
        if cache.owner_of(uid) == 0:
            uids_on_0.append(uid)
    assert uids_on_0, "placement should spread over machines"

    injector = FaultInjector(cluster, cache=cache, plan=FaultPlan({0: [0]}))
    injector.before_run(0)
    assert injector.lost_objects == len(uids_on_0)
    # Fault-tolerant layer still serves the lost objects.
    for uid in uids_on_0:
        assert cache.fetch(uid) is not None


def test_random_plan_victims_are_not_biased_to_low_ids():
    """Truncating coin-flip survivors with [:limit] always sacrificed the
    lowest-numbered machines; victims must be spread over the cluster."""
    cluster = quiet_cluster(n=8)
    victims = []
    for seed in range(60):
        plan = FaultPlan.random(
            cluster, runs=4, crash_probability=0.9, seed=seed, max_concurrent=1
        )
        for machines in plan.crashes.values():
            victims.extend(machines)
    assert victims
    high_ids = [v for v in victims if v >= 4]
    # With p=0.9 the old [:limit] code picked machine 0 almost always;
    # uniform sampling must regularly reach the upper half of the cluster.
    assert len(high_ids) > len(victims) * 0.2


def test_random_plan_respects_max_concurrent():
    cluster = quiet_cluster(n=8)
    plan = FaultPlan.random(
        cluster, runs=6, crash_probability=1.0, seed=3, max_concurrent=2
    )
    assert plan.crashes
    for machines in plan.crashes.values():
        assert 1 <= len(machines) <= 2
        assert len(set(machines)) == len(machines)

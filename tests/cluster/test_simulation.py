"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.cluster.simulation import EventQueue, SimClock


def test_clock_advances_monotonically():
    clock = SimClock()
    clock.advance_to(5.0)
    assert clock.now == 5.0
    with pytest.raises(ValueError):
        clock.advance_to(4.0)


def test_clock_reset():
    clock = SimClock()
    clock.advance_to(3.0)
    clock.reset()
    assert clock.now == 0.0


def test_event_queue_orders_by_time():
    queue = EventQueue()
    queue.push(3.0, "c")
    queue.push(1.0, "a")
    queue.push(2.0, "b")
    assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]


def test_event_queue_fifo_within_equal_times():
    queue = EventQueue()
    queue.push(1.0, "first")
    queue.push(1.0, "second")
    assert queue.pop()[1] == "first"
    assert queue.pop()[1] == "second"


def test_event_queue_rejects_negative_time():
    with pytest.raises(ValueError):
        EventQueue().push(-1.0, "x")


def test_event_queue_pop_empty():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_event_queue_peek_and_len():
    queue = EventQueue()
    assert queue.peek_time() is None
    assert not queue
    queue.push(2.5, "x")
    assert queue.peek_time() == 2.5
    assert len(queue) == 1

"""Unit tests for the distributed memoization cache and GC."""

import pytest

from repro.cluster.cache import CacheConfig, DistributedMemoCache, GarbageCollector
from repro.cluster.machine import Cluster, ClusterConfig
from repro.common.errors import CacheMissError
from repro.core.memo import MemoTable
from repro.core.partition import Partition


def make_cache(n=4, **cache_kwargs):
    cluster = Cluster(ClusterConfig(num_machines=n, straggler_fraction=0.0))
    return cluster, DistributedMemoCache(cluster, CacheConfig(**cache_kwargs))


def test_put_then_fetch_from_memory():
    _, cache = make_cache()
    part = Partition({"k": 1})
    cache.put(100, part)
    assert cache.fetch(100) == part
    assert cache.stats.memory_reads == 1
    assert cache.stats.fallback_reads == 0


def test_fetch_missing_returns_none_and_counts_miss():
    _, cache = make_cache()
    assert cache.fetch(999) is None
    assert cache.stats.misses == 1
    with pytest.raises(CacheMissError):
        cache.fetch_or_raise(999)


def test_machine_failure_falls_back_to_replica():
    cluster, cache = make_cache()
    part = Partition({"k": 2})
    cache.put(200, part)
    owner = cache.owner_of(200)
    cache.on_machine_failure(owner)
    cluster.kill(owner)
    assert cache.fetch(200) == part
    assert cache.stats.fallback_reads == 1


def test_fallback_promotes_back_to_memory():
    cluster, cache = make_cache()
    part = Partition({"k": 3})
    cache.put(300, part)
    owner = cache.owner_of(300)
    cache.on_machine_failure(owner)
    cluster.kill(owner)
    cache.fetch(300)
    cluster.revive(owner)
    assert cache.fetch(300) == part
    assert cache.stats.memory_reads == 1  # second read served from memory


def test_fallback_read_is_slower_than_memory_read():
    cluster, cache = make_cache()
    part = Partition({"k": 4})
    cache.put(400, part)
    cache.fetch(400)
    memory_time = cache.stats.read_time
    owner = cache.owner_of(400)
    cache.on_machine_failure(owner)
    cluster.kill(owner)
    cache.fetch(400)
    fallback_time = cache.stats.read_time - memory_time
    assert fallback_time > memory_time


def test_disabled_memory_cache_always_falls_back():
    """The Table 2 ablation: shim layer without the in-memory cache."""
    _, cache = make_cache(in_memory_enabled=False)
    part = Partition({"k": 5})
    cache.put(500, part)
    assert cache.fetch(500) == part
    assert cache.stats.memory_reads == 0
    assert cache.stats.fallback_reads == 1


def test_delete_removes_all_copies():
    _, cache = make_cache()
    cache.put(600, Partition({"k": 6}))
    cache.delete(600)
    assert cache.fetch(600) is None
    assert cache.space() == 0.0


def test_memo_table_backing_integration():
    """A tree MemoTable backed by the distributed cache sees its entries."""
    _, cache = make_cache()
    table = MemoTable(backing=cache)
    part = Partition({"k": 7})
    table.store(700, part)
    fresh = MemoTable(backing=cache)  # a new run's local table
    assert fresh.lookup(700) == part


def test_gc_collect_drops_dead_objects():
    _, cache = make_cache()
    for uid in range(10):
        cache.put(uid, Partition({"k": uid}))
    gc = GarbageCollector(cache)
    dropped = gc.collect(live_uids={0, 1, 2})
    assert dropped == 7
    assert cache.total_objects() == 3
    assert cache.fetch(5) is None


def test_gc_budget_evicts_oldest_first():
    _, cache = make_cache()
    gc = GarbageCollector(cache, budget=3)
    for uid in range(5):
        cache.put(uid, Partition({"k": uid}))
        gc.note_insertions([uid])
    dropped = gc.enforce_budget()
    assert dropped == 2
    assert cache.fetch(0) is None
    assert cache.fetch(1) is None
    assert cache.fetch(4) is not None


def test_replicas_survive_any_single_failure():
    cluster, cache = make_cache(n=6)
    for uid in range(20):
        cache.put(uid, Partition({"k": uid}))
    victim = 2
    cache.on_machine_failure(victim)
    cluster.kill(victim)
    for uid in range(20):
        assert cache.fetch(uid) is not None


def test_hit_rate_zero_before_any_lookup():
    from repro.cluster.cache import CacheStats, ReadStats

    assert CacheStats is ReadStats
    assert ReadStats().hit_rate == 0.0


def test_hit_rate_counts_memory_fraction():
    cluster, cache = make_cache()
    for uid in range(4):
        cache.put(uid, Partition({"k": uid}))
    for uid in range(4):
        cache.fetch(uid)  # all served from memory
    assert cache.stats.hit_rate == 1.0
    cache.fetch(999)  # a miss
    assert cache.stats.hit_rate == 4 / 5
    # Knock out a machine: its objects fall back to persistent replicas.
    victim = 0
    cache.on_machine_failure(victim)
    cluster.kill(victim)
    for uid in range(4):
        assert cache.fetch(uid) is not None
    stats = cache.stats
    assert stats.fallback_reads > 0
    lookups = stats.memory_reads + stats.fallback_reads + stats.misses
    assert stats.hit_rate == stats.memory_reads / lookups


def test_cache_counters_mirrored_into_telemetry():
    from repro.telemetry import Telemetry

    cluster = Cluster(ClusterConfig(num_machines=4, straggler_fraction=0.0))
    telemetry = Telemetry(label="cache")
    cache = DistributedMemoCache(cluster, CacheConfig(), telemetry=telemetry)
    cache.put(1, Partition({"k": 1}))
    cache.fetch(1)
    cache.fetch(2)
    assert telemetry.counters["cache.memory_reads"] == 1.0
    assert telemetry.counters["cache.misses"] == 1.0

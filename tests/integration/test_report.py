"""Tests for the report generator's table extraction."""

import pytest

from repro.bench.report import extract_tables

FAKE_OUTPUT = """\
===== test session starts =====
collected 2 items

Figure 7 (work) — Append-only (A): speedup vs recompute
=======================================================
change%  5      25
-------  -----  ----
kmeans   21.24  5.57
.
Table 1 — normalized run-time
=============================
app     normalized run-time
------  -------------------
kmeans  0.80

----- benchmark: 2 tests -----
Name (time in ms)   Min
test_fig07          1.0
===== 2 passed in 1.0s =====
"""


def test_extract_tables_keeps_experiment_rows():
    report = extract_tables(FAKE_OUTPUT)
    assert "Figure 7 (work)" in report
    assert "kmeans   21.24" in report
    assert "Table 1" in report
    assert "kmeans  0.80" in report


def test_extract_tables_drops_pytest_noise():
    report = extract_tables(FAKE_OUTPUT)
    assert "collected" not in report
    assert "benchmark:" not in report
    assert "passed" not in report
    assert "test_fig07" not in report


def test_extract_tables_separates_sections():
    report = extract_tables(FAKE_OUTPUT)
    sections = [s for s in report.split("\n\n") if s.strip()]
    assert len(sections) == 2


def test_run_benchmarks_raises_on_failure(tmp_path):
    from repro.bench.report import run_benchmarks

    bad = tmp_path / "test_fail.py"
    # --benchmark-only skips plain failing tests, so use a benchmark whose
    # shape assertion fails.
    bad.write_text(
        "def test_shape(benchmark):\n"
        "    benchmark.pedantic(lambda: None, rounds=1, iterations=1)\n"
        "    assert False, 'shape did not hold'\n"
    )
    with pytest.raises(RuntimeError):
        run_benchmarks(str(tmp_path))

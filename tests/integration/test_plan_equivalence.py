"""The plan/execute path reproduces the seed path bit for bit.

``golden_plan_equivalence.json`` was captured once from the seed code
(the inline execute-then-replay path, before the plan/execute split) and
is never regenerated: this test replays the same fixed scenario on the
current code and requires every recorded field — output fingerprints,
per-phase work breakdowns, legacy wave-model makespans, graph node
counts — to match exactly, for all five tree variants.
"""

from __future__ import annotations

import json

import pytest

from repro.slider.equivalence import (
    SCENARIO_VARIANTS,
    collect,
    default_golden_path,
    diff_against,
    variant_scenario,
)


def test_golden_records_are_checked_in():
    path = default_golden_path()
    assert path.exists(), f"seed golden records missing at {path}"
    golden = json.loads(path.read_text())
    assert set(golden) == {variant for variant, _ in SCENARIO_VARIANTS}


@pytest.mark.parametrize("variant,mode_name", SCENARIO_VARIANTS)
def test_variant_matches_seed_golden(variant, mode_name):
    golden = json.loads(default_golden_path().read_text())
    problems = diff_against(
        {variant: golden[variant]}, {variant: variant_scenario(variant, mode_name)}
    )
    assert problems == [], "\n".join(problems)


def test_full_report_is_equivalent():
    golden = json.loads(default_golden_path().read_text())
    problems = diff_against(golden, collect())
    assert problems == [], "\n".join(problems)

"""Acceptance: one micro-benchmark run exports a complete Chrome trace.

The single trace file must contain the engine phase spans (map,
contraction, reduce), executor attempt events on machine lanes, and the
memoization-layer counters — the cross-layer criterion the telemetry
backbone exists to satisfy.
"""

import json

from repro.telemetry.export import (
    export_micro_benchmark_trace,
    validate_trace_events,
)


def test_micro_benchmark_trace_is_complete(tmp_path):
    path = tmp_path / "trace.json"
    trace = export_micro_benchmark_trace(str(path))

    # The written file is valid schema-checked JSON.
    loaded = json.loads(path.read_text())
    assert validate_trace_events(loaded) == len(trace["traceEvents"])

    events = loaded["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    names = {e["name"] for e in complete}

    # Engine phase spans for both the initial run and the slide.
    assert {"map", "contraction", "reduce", "initial"} <= names
    assert any(n.startswith("incremental") for n in names)

    # Executor attempt spans landed on machine lanes.
    attempts = [e for e in complete if e.get("cat") == "attempt"]
    assert attempts
    lanes = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert any(lane.startswith("m") for lane in lanes)

    # Memoization-layer counters rode along as counter events.
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert any(n.startswith("cache.") for n in counter_names)
    assert any(n.startswith("memo.") for n in counter_names)

    # Per-phase work summary mirrors the run's accounting.
    by_phase = loaded["otherData"]["by_phase"]
    assert by_phase.get("map", 0.0) > 0.0
    assert by_phase.get("contraction", 0.0) > 0.0
    assert by_phase.get("reduce", 0.0) > 0.0

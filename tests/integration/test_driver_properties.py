"""Property test: the StreamDriver matches a brute-force reference.

For arbitrary timestamped event streams and window/slide combinations, the
driver's incremental outputs after every slide must equal recounting the
raw events inside the window from scratch.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.slider.driver import StreamDriver


def count_job() -> MapReduceJob:
    return MapReduceJob(
        name="event-count",
        map_fn=lambda record: [(record[1], 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def reference_counts(events, slide, slides_per_window, boundary_index):
    """Brute force: counts over events in the window ending at boundary
    ``boundary_index * slide``.

    Both window edges are computed as direct multiples of ``slide``.
    Deriving the start by subtraction (``boundary - slides * slide``) can
    land one ulp away from ``k * slide`` and silently exclude an event
    timestamped exactly on a slide boundary.
    """
    boundary = boundary_index * slide
    if slides_per_window is None:
        window_start = -math.inf
    else:
        window_start = (boundary_index - slides_per_window) * slide
    counts: dict[str, int] = {}
    for when, key in events:
        if window_start <= when < boundary:
            counts[key] = counts.get(key, 0) + 1
    return counts


# Strictly increasing timestamps via positive gaps; small key alphabet so
# windows overlap heavily.
gaps = st.lists(st.floats(0.01, 30.0), min_size=1, max_size=60)
keys = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60)


@settings(max_examples=40, deadline=None)
@given(
    gaps=gaps,
    keys=keys,
    slide=st.floats(1.0, 20.0),
    window_slides=st.one_of(st.none(), st.integers(1, 5)),
    split_size=st.integers(1, 7),
)
def test_driver_matches_reference(gaps, keys, slide, window_slides, split_size):
    window = None if window_slides is None else window_slides * slide
    driver = StreamDriver(
        count_job(),
        timestamp_fn=lambda record: record[0],
        slide=slide,
        window=window,
        split_size=split_size,
    )

    events = []
    t = 0.0
    for gap, key in zip(gaps, keys):
        t += gap
        events.append((t, key))

    produced = driver.feed(events)
    first_index = int(events[0][0] // slide)
    for result in produced:
        boundary_index = first_index + 1 + result.run_index
        expected = reference_counts(events, slide, window_slides, boundary_index)
        assert result.outputs == expected, (
            f"slide={slide} window={window} "
            f"boundary={boundary_index * slide}"
        )

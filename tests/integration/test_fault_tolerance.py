"""Integration: machine failures against the memoization layer.

The paper's claim (§6): losing a machine's in-memory memoized state must
never affect correctness — the fault-tolerant layer serves persisted
replicas at a higher read cost — and the scheduler keeps making progress
on the surviving machines.
"""

from repro.cluster.cache import CacheConfig, DistributedMemoCache
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import HybridScheduler, SimTask, simulate_wave
from repro.core.memo import MemoTable
from repro.core.randomized import RandomizedFoldingTree
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import make_splits
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def word_job():
    return MapReduceJob(
        name="wc",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def quiet_cluster(n=6):
    return Cluster(ClusterConfig(num_machines=n, straggler_fraction=0.0))


def test_slider_outputs_survive_crashes():
    """Crash a machine before every incremental run; outputs stay exact."""
    cluster = quiet_cluster()
    slider = Slider(
        word_job(),
        WindowMode.VARIABLE,
        config=SliderConfig(mode=WindowMode.VARIABLE, tree="strawman"),
        cluster=cluster,
    )
    injector = FaultInjector(
        cluster,
        cache=slider.cache,
        plan=FaultPlan(crashes={0: [1], 1: [3], 2: [0]}),
    )

    corpus = [f"word{i % 7} word{i % 3}" for i in range(40)]
    splits = make_splits(corpus, 1)
    slider.initial_run(splits[:30])

    from repro.mapreduce.runtime import BatchRuntime

    window = list(splits[:30])
    for run_index, (added, removed) in enumerate(
        [(splits[30:32], 2), (splits[32:35], 1), (splits[35:38], 4)]
    ):
        injector.before_run(run_index)
        window = window[removed:] + list(added)
        result = slider.advance(added, removed)
        expected = BatchRuntime(word_job()).run(window).outputs
        assert result.outputs == expected


def test_crash_increases_read_cost_not_correctness():
    """A randomized tree (content-memoized through the distributed cache)
    keeps its entries through a crash — served from replicas, at fallback
    cost."""
    cluster = quiet_cluster()
    cache = DistributedMemoCache(cluster, CacheConfig())
    tree = RandomizedFoldingTree(
        SumCombiner(), memo=MemoTable(backing=cache), auto_gc=False
    )

    from repro.core.partition import Partition

    leaves = [Partition({"total": v, ("u", i): 1}) for i, v in enumerate(range(16))]
    tree.initial_run(leaves)
    assert cache.total_objects() > 0

    # Crash the machine owning the most objects; local tables die too.
    owners = {}
    for uid in list(cache._index):
        owners[cache.owner_of(uid)] = owners.get(cache.owner_of(uid), 0) + 1
    victim = max(owners, key=owners.get)
    cache.on_machine_failure(victim)
    cluster.kill(victim)
    tree.memo.entries.clear()

    # Re-running the identical window hits memoized values via replicas.
    invocations_before = tree.stats.combiner_invocations
    root = tree.advance([], 0)
    assert root.get("total") == sum(range(16))
    assert cache.stats.fallback_reads > 0
    assert tree.stats.combiner_invocations == invocations_before


def test_scheduling_continues_on_survivors():
    cluster = quiet_cluster(n=3)
    cluster.kill(0)
    cluster.kill(1)
    tasks = [SimTask(f"t{i}", cost=4.0, preferred_machine=0) for i in range(4)]
    makespan, log = simulate_wave(tasks, cluster, HybridScheduler())
    assert all(a.machine_id == 2 for a in log)
    assert makespan == 4 * (4.0 / 1.0) / cluster.machine(2).slots


def test_without_replication_crash_forces_recomputation():
    """Ablation: with zero replicas, a crash loses state and the tree
    recomputes (correct but more expensive) — quantifying what the
    fault-tolerant layer buys."""
    from repro.core.partition import Partition

    def run_with(replicas: int) -> tuple[int, float]:
        cluster = quiet_cluster()
        cache = DistributedMemoCache(cluster, CacheConfig(replicas=replicas))
        tree = RandomizedFoldingTree(
            SumCombiner(), memo=MemoTable(backing=cache), auto_gc=False
        )
        leaves = [
            Partition({"total": v, ("u", i): 1}) for i, v in enumerate(range(64))
        ]
        tree.initial_run(leaves)
        invocations_before = tree.stats.combiner_invocations
        # Total cluster memory wipe (all machines restart).
        for machine in cluster.machines:
            cache.on_machine_failure(machine.machine_id)
        tree.memo.entries.clear()  # local tables die with their workers
        root = tree.advance([], 0)
        assert root.get("total") == sum(range(64))
        return tree.stats.combiner_invocations - invocations_before, root.uid

    recomputed_with, root_a = run_with(replicas=2)
    recomputed_without, root_b = run_with(replicas=0)
    assert root_a == root_b
    assert recomputed_with == 0  # replicas served everything
    assert recomputed_without > 10  # full recomputation


def test_slider_on_machine_failure_invalidates_local_views():
    """After a crash, tree memo lookups go through the shim layer and are
    served from replicas; outputs stay exact."""
    cluster = quiet_cluster()
    slider = Slider(
        word_job(),
        WindowMode.VARIABLE,
        config=SliderConfig(mode=WindowMode.VARIABLE, tree="randomized"),
        cluster=cluster,
    )
    injector = FaultInjector(
        cluster, slider=slider, plan=FaultPlan(crashes={0: [2]})
    )
    corpus = [f"word{i % 7} word{i % 3}" for i in range(40)]
    splits = make_splits(corpus, 1)
    slider.initial_run(splits[:30])

    injector.before_run(0)
    result = slider.advance(splits[30:32], 2)

    from repro.mapreduce.runtime import BatchRuntime

    expected = BatchRuntime(word_job()).run(splits[2:32]).outputs
    assert result.outputs == expected
    assert slider.cache.stats.fallback_reads > 0

"""Bit-identity: span-recording telemetry never perturbs the accounting.

Drives every tree variant (including the split-processing modes, whose
pre-processing charges land in ``Phase.BACKGROUND``) through the same
window schedule twice — once under the default recording
:class:`~repro.telemetry.Telemetry` and once under the no-op
:class:`~repro.telemetry.NullTelemetry`, whose ``charge`` is exactly the
seed ``WorkMeter`` update.  The per-phase totals must be *equal as
floats*, not merely close: the backbone adds amounts to the root span in
the seed's chronological order, so every historical number is unchanged
to the last bit.
"""

import pytest

from repro.apps.registry import micro_benchmark_apps
from repro.metrics import Phase
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode
from repro.telemetry import NullTelemetry, Telemetry

#: (variant, mode, split_mode) cells — every tree, plus the split modes.
CASES = [
    ("folding", WindowMode.VARIABLE, False),
    ("randomized", WindowMode.VARIABLE, False),
    ("strawman", WindowMode.VARIABLE, False),
    ("rotating", WindowMode.FIXED, False),
    ("coalescing", WindowMode.APPEND, False),
    ("rotating", WindowMode.FIXED, True),
    ("coalescing", WindowMode.APPEND, True),
]


def drive(variant: str, mode: WindowMode, split_mode: bool, telemetry):
    spec = next(s for s in micro_benchmark_apps() if s.name == "hct")
    job = spec.make_job()
    config = SliderConfig(
        mode=mode,
        tree=variant,
        bucket_size=2 if mode is WindowMode.FIXED else 1,
        split_mode=split_mode,
    )
    slider = Slider(job, mode, config=config, telemetry=telemetry)
    slider.initial_run(spec.make_splits(12, 17, 0))
    if split_mode:
        slider.background_preprocess()
    removed = 0 if mode is WindowMode.APPEND else 2
    slider.advance(spec.make_splits(2, 17, 12), removed)
    if split_mode:
        slider.background_preprocess()
    slider.advance(spec.make_splits(2, 17, 14), removed)
    return slider


@pytest.mark.parametrize(
    "variant,mode,split_mode",
    CASES,
    ids=[f"{v}{'+split' if s else ''}" for v, _, s in CASES],
)
def test_by_phase_bit_identical_to_null_recorder(variant, mode, split_mode):
    recorded = drive(variant, mode, split_mode, Telemetry(label="on"))
    reference = drive(variant, mode, split_mode, NullTelemetry(label="off"))
    assert dict(recorded.meter.by_phase) == dict(reference.meter.by_phase)
    if split_mode:
        # Split processing's pre-processing charges are split out into
        # their own phase in both recorders.
        assert recorded.meter.by_phase.get(Phase.BACKGROUND, 0.0) > 0.0
    # The recording run additionally grew a closed span tree.
    assert recorded.telemetry.span_count() > 1
    assert recorded.telemetry.unclosed_spans() == []
    assert reference.telemetry.span_count() == 1

"""Process-backend equivalence: the seam is invisible, bit for bit.

The golden equivalence scenarios run under a simulated cluster, whose
runs the process backend refuses by design — so passing them under
``REPRO_EXECUTION_BACKEND=process`` exercises only the fallback rung.
These tests drive the seam for real: cluster-free twin engines, one per
backend, over identical schedules, with the dispatch counter asserted so
a silently-ineligible configuration cannot pass vacuously.

Checked per run: outputs, metered work, per-phase breakdown, and the
recorded task graph node for node.  Checked at the end: cumulative
per-phase totals to the last bit (hex-compared floats), telemetry
counters (minus the ``backend.*`` dispatch accounting, which legitimately
differs between a backend that dispatches and one that cannot), memo
stats, and retained space.
"""

import pytest

from repro.core.backends import ProcessBackend
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

VARIANTS = [
    ("folding", WindowMode.VARIABLE),
    ("randomized", WindowMode.VARIABLE),
    ("strawman", WindowMode.VARIABLE),
    ("rotating", WindowMode.FIXED),
    ("coalescing", WindowMode.APPEND),
]

#: Variants whose planners emit structure-cacheable plans: their steady
#: advances replay compiled templates, which is the dispatch precondition.
#: randomized/strawman replan value-dependently and must never dispatch —
#: their twin runs check that the fallback rung is itself bit-identical.
CACHEABLE = {"folding", "rotating", "coalescing"}

ADVANCES = 14


def make_job():
    return MapReduceJob(
        name="process-equivalence",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=3,
    )


def make_split(i):
    return Split.from_records(
        [f"w{(i * 7 + j) % 11}" for j in range(15)], label=f"s{i}"
    )


def make_engine(variant, mode, backend, workers=2):
    config = SliderConfig(
        mode=mode,
        tree=variant,
        execution_backend=backend,
        workers=workers,
    )
    return Slider(make_job(), mode, config=config)


def graph_nodes(result):
    if result.graph is None:
        return None
    return [
        (node.uid, node.kind, node.deps, node.label)
        for node in result.graph.nodes
    ]


def drive_twins(variant, mode, advances=ADVANCES):
    """Run the same schedule on both backends; compare every run."""
    inproc = make_engine(variant, mode, "inprocess")
    proc = make_engine(variant, mode, "process")
    try:
        removed = 0 if mode is WindowMode.APPEND else 1
        initial = [make_split(i) for i in range(5)]
        a = inproc.initial_run(list(initial))
        b = proc.initial_run(list(initial))
        runs = [(a, b)]
        for i in range(advances):
            added = [make_split(30 + i)]
            runs.append(
                (inproc.advance(list(added), removed),
                 proc.advance(list(added), removed))
            )
        for index, (x, y) in enumerate(runs):
            assert y.outputs == x.outputs, (variant, index)
            assert y.report.work == x.report.work, (variant, index)
            assert dict(y.report.breakdown) == dict(x.report.breakdown), (
                variant,
                index,
            )
            assert y.report.space == x.report.space, (variant, index)
            assert graph_nodes(y) == graph_nodes(x), (variant, index)

        # Cumulative float totals are identical to the last bit.
        left, right = inproc.meter.by_phase, proc.meter.by_phase
        assert set(left) == set(right)
        for phase in left:
            assert left[phase].hex() == right[phase].hex(), (variant, phase)

        def counters(engine):
            return {
                name: value
                for name, value in engine.telemetry.counters.items()
                if not name.startswith("backend.")
            }

        assert counters(proc) == counters(inproc), variant
        for t_in, t_proc in zip(inproc.trees, proc.trees):
            assert t_proc.memo.stats == t_in.memo.stats, variant
            assert t_proc.memo.space() == t_in.memo.space(), variant
        return inproc, proc
    except BaseException:
        inproc.close()
        proc.close()
        raise


@pytest.mark.parametrize(
    "variant,mode", VARIANTS, ids=[v for v, _ in VARIANTS]
)
def test_backends_bit_identical(variant, mode):
    inproc, proc = drive_twins(variant, mode)
    try:
        dispatched = proc.telemetry.counters.get(
            "backend.dispatched_reducers", 0
        )
        if variant in CACHEABLE:
            # Not vacuous: the process twin really crossed the seam.
            assert dispatched > 0, f"{variant}: process backend never dispatched"
            assert not proc.backend.broken
        else:
            # Value-dependent planners never replay, so never dispatch.
            assert dispatched == 0, variant
    finally:
        inproc.close()
        proc.close()


def test_dispatch_survives_many_reducers_round_robin():
    """More reducers than workers: round-robin keeps merge order correct."""
    job = MapReduceJob(
        name="round-robin",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=5,
    )
    config = dict(mode=WindowMode.VARIABLE, tree="folding")
    inproc = Slider(
        job, WindowMode.VARIABLE,
        config=SliderConfig(**config, execution_backend="inprocess"),
    )
    proc = Slider(
        job, WindowMode.VARIABLE,
        config=SliderConfig(**config, execution_backend="process", workers=2),
    )
    try:
        initial = [make_split(i) for i in range(5)]
        inproc.initial_run(list(initial))
        proc.initial_run(list(initial))
        for i in range(12):
            a = inproc.advance([make_split(40 + i)], 1)
            b = proc.advance([make_split(40 + i)], 1)
            assert b.outputs == a.outputs
            assert b.report.work == a.report.work
        assert proc.telemetry.counters.get("backend.dispatched_reducers", 0) > 0
        assert len(proc.backend._pool) == 2  # capped below reducer count
    finally:
        inproc.close()
        proc.close()


class TestCheckpointAcrossBackends:
    def test_checkpoint_restore_under_process_backend(self, tmp_path):
        """Checkpoint drains the shared segment; restore reattaches and
        the resumed engine stays bit-identical to an uninterrupted one."""
        job = make_job()
        config = SliderConfig(
            mode=WindowMode.VARIABLE,
            tree="folding",
            execution_backend="process",
            workers=2,
        )
        engine = Slider(job, WindowMode.VARIABLE, config=config)
        control = Slider(job, WindowMode.VARIABLE, config=config)
        try:
            initial = [make_split(i) for i in range(5)]
            engine.initial_run(list(initial))
            control.initial_run(list(initial))
            for i in range(10):
                engine.advance([make_split(50 + i)], 1)
                control.advance([make_split(50 + i)], 1)
            engine.checkpoint(tmp_path / "ckpt")
            engine.close()

            restored = Slider.restore(tmp_path / "ckpt", job)
            try:
                assert isinstance(restored.backend, ProcessBackend)
                for i in range(6):
                    a = restored.advance([make_split(70 + i)], 1)
                    b = control.advance([make_split(70 + i)], 1)
                    assert a.outputs == b.outputs, i
                    assert a.report.work == b.report.work, i
                assert restored.verify_outputs() == control.verify_outputs()
            finally:
                restored.close()
        finally:
            control.close()

    def test_state_moves_between_backends(self, tmp_path):
        """A checkpoint taken under one backend restores under the other:
        capture drains shared namespaces into plain data and apply
        reattaches through whatever store the new engine's backend built."""
        from repro.recovery.state import (
            apply_engine_state,
            apply_telemetry,
            capture_engine_state,
            capture_telemetry,
        )

        job = make_job()
        proc = Slider(
            job,
            WindowMode.VARIABLE,
            config=SliderConfig(
                mode=WindowMode.VARIABLE,
                tree="folding",
                execution_backend="process",
                workers=2,
            ),
        )
        inproc = Slider(
            job,
            WindowMode.VARIABLE,
            config=SliderConfig(
                mode=WindowMode.VARIABLE,
                tree="folding",
                execution_backend="inprocess",
            ),
        )
        try:
            proc.initial_run([make_split(i) for i in range(5)])
            for i in range(10):
                proc.advance([make_split(50 + i)], 1)
            state = capture_engine_state(proc)
            fresh = Slider(
                job,
                WindowMode.VARIABLE,
                config=SliderConfig(
                    mode=WindowMode.VARIABLE,
                    tree="folding",
                    execution_backend="inprocess",
                ),
            )
            apply_engine_state(fresh, state)
            # Replay cumulative telemetry too: per-run work is a delta
            # of cumulative floats, so the starting totals must match
            # bit for bit (the full checkpoint path does the same).
            apply_telemetry(fresh.telemetry, capture_telemetry(proc.telemetry))
            # Replay the same schedule on the plain twin for reference.
            inproc.initial_run([make_split(i) for i in range(5)])
            for i in range(10):
                inproc.advance([make_split(50 + i)], 1)
            a = fresh.advance([make_split(70)], 1)
            b = inproc.advance([make_split(70)], 1)
            assert a.outputs == b.outputs
            assert a.report.work == b.report.work
        finally:
            proc.close()
            inproc.close()


class TestDynamicRecorderOverWorkers:
    def test_recorder_observes_worker_steps_without_unexplained_races(self):
        """The vector-clock cross-check holds over real worker processes:
        worker probe events replay through the parent probe, so the
        recorder sees every remotely executed step — and finds no
        conflict the static pass did not flag."""
        from repro.analysis.dynamic import DynamicRaceRecorder
        from repro.analysis.races import analyze_plan

        recorder = DynamicRaceRecorder()
        engine = make_engine("folding", WindowMode.VARIABLE, "process")
        try:
            engine.executor.probe = recorder
            static = []
            result = engine.initial_run([make_split(i) for i in range(5)])
            if result.plan is not None:
                static.extend(analyze_plan(result.plan))
            for i in range(12):
                result = engine.advance([make_split(30 + i)], 1)
                if result.plan is not None:
                    static.extend(analyze_plan(result.plan))
            assert (
                engine.telemetry.counters.get("backend.dispatched_reducers", 0)
                > 0
            )
            assert recorder.events > 0
            assert recorder.unexplained(static) == []
        finally:
            engine.close()

"""Compiled execution is bit-identical to uncompiled, for every variant.

The tentpole gate: with the plan cache and fusion on (the defaults),
every run of every tree variant must produce *exactly* the outputs, the
metered work, the per-phase breakdown, the simulated time, and the plan
shape of a twin engine with the compile layer disabled.  No approx
comparisons anywhere — the kernels' bit-identity contract makes exact
equality the spec.
"""

import pytest

import repro.core.execute as execute_module
from repro.cluster.machine import Cluster, ClusterConfig
from repro.core.compile import fused_combine_partitions
from repro.mapreduce.combiners import SumCombiner, VectorSumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

VARIANTS = [
    ("folding", WindowMode.VARIABLE),
    ("randomized", WindowMode.VARIABLE),
    ("strawman", WindowMode.VARIABLE),
    ("rotating", WindowMode.FIXED),
    ("coalescing", WindowMode.APPEND),
]

WINDOW = 6
STEADY_ADVANCES = 14  # > WINDOW, so cacheable variants replay for real


def count_job():
    return MapReduceJob(
        name="counts",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def centroid_job():
    return MapReduceJob(
        name="centroids",
        map_fn=lambda record: [
            (record % 3, (1, (float(record), float(record) * 0.5)))
        ],
        combiner=VectorSumCombiner(),
        num_reducers=2,
    )


def split_of(i, n=18):
    return Split.from_records(
        [f"w{(i * 7 + j) % 11}" for j in range(n)], label=f"s{i}"
    )


def quiet_cluster():
    return Cluster(ClusterConfig(num_machines=6, straggler_fraction=0.0))


def build(variant, mode, job_factory=count_job, **config_kw):
    config = SliderConfig(mode=mode, tree=variant, **config_kw)
    return Slider(job_factory(), mode, config=config, cluster=quiet_cluster())


def drive(slider, mode, splits_fn=split_of):
    results = [slider.initial_run([splits_fn(i) for i in range(WINDOW)])]
    removed = 0 if mode is WindowMode.APPEND else 1
    for k in range(STEADY_ADVANCES):
        results.append(slider.advance([splits_fn(WINDOW + k)], removed))
    return results


def assert_runs_identical(compiled_runs, plain_runs):
    assert len(compiled_runs) == len(plain_runs)
    for a, b in zip(compiled_runs, plain_runs):
        assert a.outputs == b.outputs
        assert a.report.work == b.report.work
        assert a.report.time == b.report.time
        assert a.report.breakdown == b.report.breakdown
        assert a.plan.shape() == b.plan.shape()
        assert a.plan.structural_signature() == b.plan.structural_signature()


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_compiled_equals_uncompiled(variant, mode):
    compiled = build(variant, mode)  # cache + fusion on by default
    plain = build(variant, mode, plan_cache=False, plan_fusion=False)
    assert_runs_identical(drive(compiled, mode), drive(plain, mode))
    for slider in (compiled, plain):
        assert slider.verify_outputs()
    if variant in ("folding", "rotating", "coalescing"):
        stats = compiled.plan_cache.stats
        assert stats.hits > 0, "steady state must actually replay"
    assert plain.plan_cache.stats.hits == 0


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_fusion_off_equals_fusion_on(variant, mode):
    fused = build(variant, mode)
    unfused = build(variant, mode, plan_fusion=False)
    assert_runs_identical(drive(fused, mode), drive(unfused, mode))


def test_replay_dispatches_batch_kernels(monkeypatch):
    """On a cache hit with a fusion-legal combiner, fused combines really
    go through the vectorized path — not just a flag on the artifact."""
    calls = {"n": 0}

    def counting(*args, **kwargs):
        calls["n"] += 1
        return fused_combine_partitions(*args, **kwargs)

    monkeypatch.setattr(
        execute_module, "fused_combine_partitions", counting
    )
    slider = build("folding", WindowMode.VARIABLE)
    drive(slider, WindowMode.VARIABLE)
    stats = slider.plan_cache.stats
    assert stats.hits > 0
    assert calls["n"] > 0, "hits occurred but no kernel dispatch happened"


def test_vector_combiner_equivalence_under_replay():
    def splits(i):
        return Split.from_records(
            [i * 13 + j for j in range(12)], label=f"s{i}"
        )

    compiled = build("folding", WindowMode.VARIABLE, job_factory=centroid_job)
    plain = build(
        "folding",
        WindowMode.VARIABLE,
        job_factory=centroid_job,
        plan_cache=False,
        plan_fusion=False,
    )
    compiled_runs = drive(compiled, WindowMode.VARIABLE, splits_fn=splits)
    plain_runs = drive(plain, WindowMode.VARIABLE, splits_fn=splits)
    assert_runs_identical(compiled_runs, plain_runs)
    assert compiled.plan_cache.stats.hits > 0
    for count, vec in compiled_runs[-1].outputs.values():
        assert type(count) is int and type(vec) is tuple


def test_steady_state_hit_rate_exceeds_99_percent():
    """The driver-sweep acceptance bar, in miniature: after the one-window
    warmup, a long steady advance sequence is ≥99% cache hits."""
    slider = build("folding", WindowMode.VARIABLE)
    slider.initial_run([split_of(i) for i in range(WINDOW)])
    # Warmup: the folding structure key recurs with period = the next
    # power of two above the window, so drive until the first replay.
    for k in range(4 * WINDOW):
        if slider.advance([split_of(WINDOW + k)], 1).plan_cache_hit:
            break
    else:  # pragma: no cover - defends the loop above
        raise AssertionError("steady slides never reached a cache hit")
    hits = 0
    runs = 120
    for k in range(runs):
        if slider.advance([split_of(50 + k)], 1).plan_cache_hit:
            hits += 1
    assert hits / runs >= 0.99
    assert hits == runs  # in a calm steady state it is in fact 100%

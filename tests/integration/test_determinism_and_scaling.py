"""Integration: end-to-end determinism and asymptotic scaling.

Two system-level properties the design promises:

* **determinism** — identical seeds produce bit-identical outputs, work
  numbers, and simulated times across completely fresh runs;
* **sub-linear updates** — a fixed-size slide costs work that grows only
  logarithmically with the window, while recomputation grows linearly
  (the core complexity claim of self-adjusting contraction trees).
"""

from repro.apps.registry import APP_REGISTRY
from repro.bench.harness import SlideSchedule, make_cluster, run_experiment
from repro.core.folding import FoldingTree
from repro.core.partition import Partition
from repro.core.rotating import RotatingTree
from repro.mapreduce.combiners import SumCombiner
from repro.slider.window import WindowMode


def test_full_experiment_is_deterministic():
    spec = APP_REGISTRY["hct"]
    schedule = SlideSchedule.for_change(WindowMode.VARIABLE, 20, 10)

    def run():
        experiment = run_experiment(
            spec,
            WindowMode.VARIABLE,
            schedule,
            "slider",
            cluster=make_cluster(),
        )
        return (
            experiment.initial.work,
            experiment.initial.time,
            [r.work for r in experiment.incremental],
            [r.time for r in experiment.incremental],
        )

    assert run() == run()


def test_variants_deterministic_across_modes():
    spec = APP_REGISTRY["substr"]
    for mode in WindowMode:
        schedule = SlideSchedule.for_change(mode, 12, 10)
        a = run_experiment(spec, mode, schedule, "slider")
        b = run_experiment(spec, mode, schedule, "slider")
        assert [r.work for r in a.incremental] == [r.work for r in b.incremental]


def _aggregating_leaves(count):
    # Single shared key: per-node merge cost is constant, exposing the
    # dependence of update cost on tree height alone.
    return [Partition({"total": v}) for v in range(count)]


def test_folding_update_cost_grows_sublinearly():
    """Doubling the window must not double the slide cost."""
    costs = {}
    for size in (64, 256, 1024):
        tree = FoldingTree(SumCombiner())
        tree.initial_run(_aggregating_leaves(size))
        before = tree.meter.total()
        tree.advance([Partition({"total": size + 1})], removed=1)
        costs[size] = tree.meter.total() - before
    # 16x window -> far less than 16x cost (log-ish growth).
    assert costs[1024] < 4.0 * costs[64]


def test_rotating_update_cost_grows_sublinearly():
    costs = {}
    for size in (64, 256, 1024):
        tree = RotatingTree(SumCombiner(), bucket_size=1)
        tree.initial_run(_aggregating_leaves(size))
        before = tree.meter.total()
        tree.advance([Partition({"total": size + 1})], removed=1)
        costs[size] = tree.meter.total() - before
    assert costs[1024] < 4.0 * costs[64]


def test_vanilla_recompute_grows_linearly():
    spec = APP_REGISTRY["hct"]
    works = {}
    for size in (10, 40):
        schedule = SlideSchedule.for_change(WindowMode.VARIABLE, size, 10)
        works[size] = run_experiment(
            spec, WindowMode.VARIABLE, schedule, "vanilla"
        ).mean_incremental_work()
    assert works[40] > 3.0 * works[10]


def test_slider_advantage_widens_with_window():
    """The headline asymptotic claim, end to end: Slider's advantage over
    recomputation grows with the window size at a fixed slide size."""
    spec = APP_REGISTRY["hct"]
    ratios = {}
    for size in (16, 64):
        schedule = SlideSchedule(window_splits=size, slides=((2, 2), (2, 2)))
        slider = run_experiment(spec, WindowMode.VARIABLE, schedule, "slider")
        vanilla = run_experiment(spec, WindowMode.VARIABLE, schedule, "vanilla")
        ratios[size] = (
            vanilla.mean_incremental_work() / slider.mean_incremental_work()
        )
    assert ratios[64] > 1.5 * ratios[16]

"""Property tests: chaos perturbs time, never results.

For random windows, applications, and fault schedules, the incremental
outputs under chaos must be identical to the fault-free run's, and the
same seed must reproduce the same recovery trace (makespans, attempt
counts, repair traffic) twice — the executor draws every coin from named
RngStreams, so recovery is as deterministic as the computation itself.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.chaos import ChaosPlan
from repro.cluster.machine import Cluster, ClusterConfig
from repro.mapreduce.combiners import MaxCombiner, MeanCombiner, SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import make_splits
from repro.slider.system import Slider
from repro.slider.window import WindowMode

APPS = {
    "wordcount": lambda: MapReduceJob(
        name="wordcount",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=2,
    ),
    "max": lambda: MapReduceJob(
        name="max",
        map_fn=lambda line: [(w[0], float(len(w))) for w in line.split()],
        combiner=MaxCombiner(),
        num_reducers=2,
    ),
    "mean": lambda: MapReduceJob(
        name="mean",
        map_fn=lambda line: [(w[0], (float(len(w)), 1)) for w in line.split()],
        combiner=MeanCombiner(),
        num_reducers=2,
    ),
}


def make_corpus(size, seed):
    return [
        f"w{(i * 7 + seed) % 11} w{(i + seed) % 5} w{i % 3}"
        for i in range(size)
    ]


def run_windows(app, corpus, deltas, chaos):
    """Drive one Slider through initial + incremental runs; collect the
    outputs and the observable recovery/time trace of each run."""
    cluster = Cluster(
        ClusterConfig(num_machines=5, straggler_fraction=0.0, seed=13)
    )
    slider = Slider(
        APPS[app](), WindowMode.VARIABLE, cluster=cluster, chaos=chaos
    )
    splits = make_splits(corpus, 3)
    initial = max(2, len(splits) // 2)
    results = [slider.initial_run(splits[:initial])]
    cursor = initial
    for add, remove in deltas:
        add = min(add, len(splits) - cursor)
        remove = min(remove, len(slider.window) - 1)
        results.append(
            slider.advance(splits[cursor : cursor + add], remove)
        )
        cursor += add
    slider.verify_outputs()
    outputs = [r.outputs for r in results]
    trace = [
        (r.report.time, dict(r.report.recovery)) for r in results
    ]
    return outputs, trace


@settings(max_examples=15, deadline=None, derandomize=True)
@given(
    app=st.sampled_from(sorted(APPS)),
    corpus_size=st.integers(18, 60),
    corpus_seed=st.integers(0, 5),
    deltas=st.lists(
        st.tuples(st.integers(1, 4), st.integers(0, 3)),
        min_size=1,
        max_size=3,
    ),
    chaos_seed=st.integers(0, 10_000),
)
def test_outputs_identical_to_fault_free_run(
    app, corpus_size, corpus_seed, deltas, chaos_seed
):
    corpus = make_corpus(corpus_size, corpus_seed)
    probe_cluster = Cluster(
        ClusterConfig(num_machines=5, straggler_fraction=0.0, seed=13)
    )
    # Fault-free probe run: its per-run times bound the chaos horizon so
    # crashes actually land mid-execution.
    calm_outputs, calm_trace = run_windows(app, corpus, deltas, chaos=None)
    horizon = max(0.5, min(time for time, _ in calm_trace))
    chaos = ChaosPlan.random(
        probe_cluster,
        runs=len(deltas) + 1,
        seed=chaos_seed,
        horizon=horizon,
        crash_probability=0.6,
        straggle_probability=0.4,
        transient_rate=0.1,
    )
    chaotic_outputs, chaotic_trace = run_windows(app, corpus, deltas, chaos)
    assert chaotic_outputs == calm_outputs
    # faults can only delay a run, never speed it up
    for (calm_time, _), (chaos_time, recovery) in zip(
        calm_trace, chaotic_trace
    ):
        if recovery:
            assert chaos_time >= calm_time - 1e-9


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    app=st.sampled_from(sorted(APPS)),
    chaos_seed=st.integers(0, 10_000),
)
def test_same_seed_same_recovery_trace(app, chaos_seed):
    corpus = make_corpus(36, seed=1)
    deltas = [(3, 2), (2, 1)]
    probe_cluster = Cluster(
        ClusterConfig(num_machines=5, straggler_fraction=0.0, seed=13)
    )
    chaos = ChaosPlan.random(
        probe_cluster,
        runs=3,
        seed=chaos_seed,
        horizon=20.0,
        crash_probability=0.7,
        straggle_probability=0.5,
        transient_rate=0.15,
    )
    first_outputs, first_trace = run_windows(app, corpus, deltas, chaos)
    second_outputs, second_trace = run_windows(app, corpus, deltas, chaos)
    assert first_outputs == second_outputs
    assert first_trace == second_trace

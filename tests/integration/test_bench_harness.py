"""Tests for the benchmark harness and formatting helpers."""

import pytest

from repro.apps.registry import APP_REGISTRY
from repro.bench.format import format_series, format_table
from repro.bench.harness import (
    SlideSchedule,
    run_change_sweep,
    run_experiment,
)
from repro.slider.window import WindowMode


def test_schedule_for_change_append():
    schedule = SlideSchedule.for_change(WindowMode.APPEND, 40, 10, rounds=3)
    assert schedule.slides == ((4, 0), (4, 0), (4, 0))


def test_schedule_for_change_fixed():
    schedule = SlideSchedule.for_change(WindowMode.FIXED, 40, 25)
    assert schedule.slides == ((10, 10), (10, 10))


def test_schedule_minimum_delta_is_one():
    schedule = SlideSchedule.for_change(WindowMode.VARIABLE, 10, 5)
    assert schedule.slides[0] == (1, 1)


@pytest.mark.parametrize("variant", ["slider", "vanilla", "strawman"])
def test_run_experiment_produces_reports(variant):
    spec = APP_REGISTRY["hct"]
    schedule = SlideSchedule.for_change(WindowMode.VARIABLE, 12, 10)
    experiment = run_experiment(spec, WindowMode.VARIABLE, schedule, variant)
    assert experiment.initial.work > 0
    assert len(experiment.incremental) == 2
    assert all(r.work > 0 for r in experiment.incremental)


def test_variants_agree_on_outputs():
    spec = APP_REGISTRY["hct"]
    schedule = SlideSchedule.for_change(WindowMode.VARIABLE, 12, 10)
    digests = {
        variant: run_experiment(
            spec, WindowMode.VARIABLE, schedule, variant
        ).outputs_digest
        for variant in ("slider", "vanilla", "strawman")
    }
    assert len(set(digests.values())) == 1


def test_sweep_speedups_decrease_with_change():
    spec = APP_REGISTRY["hct"]
    sweep = run_change_sweep(
        spec,
        WindowMode.APPEND,
        "vanilla",
        change_percents=(5, 25),
        window_splits=30,
        use_cluster=False,
    )
    assert sweep.work_speedups[0] > sweep.work_speedups[-1] > 1.0


def test_fixed_mode_experiment_uses_bucketed_slides():
    spec = APP_REGISTRY["hct"]
    schedule = SlideSchedule.for_change(WindowMode.FIXED, 20, 20)
    experiment = run_experiment(spec, WindowMode.FIXED, schedule, "slider")
    assert len(experiment.incremental) == 2


def test_format_table_alignment():
    text = format_table("T", ["a", "bbbb"], [[1, 2.5], [10, 3.25]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bbbb" in lines[2]
    assert "2.50" in text and "3.25" in text


def test_format_series_rows_per_series():
    text = format_series("S", "x", [5, 10], {"app": [1.5, 2.0]})
    assert "app" in text
    assert "1.50" in text and "2.00" in text

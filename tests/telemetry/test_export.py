"""Chrome trace export: schema round-trip and validation gates."""

import json

import pytest

from repro.telemetry import (
    Phase,
    SpanKind,
    Telemetry,
    TraceValidationError,
    to_chrome_trace,
    validate_trace_events,
    write_chrome_trace,
)
from repro.telemetry.export import REQUIRED_FIELDS, TIME_SCALE


def sample_telemetry() -> Telemetry:
    t = Telemetry(label="sample")
    with t.span("initial", SpanKind.WINDOW_UPDATE, run_index=0):
        with t.span("map", SpanKind.PHASE):
            t.charge(Phase.MAP, 2.0)
        with t.span("reduce", SpanKind.PHASE):
            t.charge(Phase.REDUCE, 1.0)
    t.record_span(
        "map:0#0", SpanKind.ATTEMPT, start=0.0, end=1.5, thread="m0.s0"
    )
    t.count("cache.memory_reads", ts=0.5)
    t.instant("executor.crash", ts=1.0, machine=3)
    return t


def test_round_trip_preserves_required_fields(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(sample_telemetry(), str(path))
    trace = json.loads(path.read_text())

    events = trace["traceEvents"]
    assert validate_trace_events(trace) == len(events)
    for event in events:
        for fld in REQUIRED_FIELDS[event["ph"]]:
            assert fld in event, (event["name"], fld)

    complete = [e for e in events if e["ph"] == "X"]
    names = {e["name"] for e in complete}
    assert {"initial", "map", "reduce", "map:0#0"} <= names
    attempt = next(e for e in complete if e["name"] == "map:0#0")
    assert attempt["ts"] == 0.0
    assert attempt["dur"] == 1.5 * TIME_SCALE
    assert isinstance(attempt["pid"], int)
    assert isinstance(attempt["tid"], int)

    # Counter and instant events rode along.
    assert any(e["ph"] == "C" for e in events)
    assert any(e["ph"] == "i" for e in events)
    # The attempt's machine lane got a thread_name metadata record.
    lanes = [
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert "m0.s0" in lanes


def test_span_durations_scale_with_work():
    t = sample_telemetry()
    trace = to_chrome_trace(t)
    map_event = next(
        e for e in trace["traceEvents"] if e.get("name") == "map"
    )
    assert map_event["dur"] == 2.0 * TIME_SCALE
    assert map_event["args"]["work"] == {"map": 2.0}


def test_export_refuses_unclosed_spans():
    t = Telemetry(label="x")
    t.open_span("dangling", SpanKind.PHASE)
    with pytest.raises(TraceValidationError, match="unclosed"):
        to_chrome_trace(t)


def test_validation_rejects_missing_fields_and_bad_timestamps():
    good = to_chrome_trace(sample_telemetry())
    validate_trace_events(good)

    missing = json.loads(json.dumps(good))
    del missing["traceEvents"][-1]["ts"]
    with pytest.raises(TraceValidationError, match="missing"):
        validate_trace_events(missing)

    negative = json.loads(json.dumps(good))
    for event in negative["traceEvents"]:
        if event["ph"] == "X":
            event["dur"] = -1.0
            break
    with pytest.raises(TraceValidationError, match="bad dur"):
        validate_trace_events(negative)

    with pytest.raises(TraceValidationError, match="empty"):
        validate_trace_events({"traceEvents": []})


def test_by_phase_summary_in_other_data():
    trace = to_chrome_trace(sample_telemetry())
    assert trace["otherData"]["by_phase"] == {"map": 2.0, "reduce": 1.0}
    assert trace["otherData"]["counters"]["cache.memory_reads"] == 1.0

"""Unit tests for the span tree and the charge-propagation contract."""

import pytest

from repro.telemetry import (
    NullTelemetry,
    Phase,
    SpanKind,
    Telemetry,
)


def test_charge_propagates_to_every_open_span():
    t = Telemetry(label="x")
    with t.span("update", SpanKind.WINDOW_UPDATE):
        with t.span("map", SpanKind.PHASE):
            t.charge(Phase.MAP, 3.0)
        with t.span("reduce", SpanKind.PHASE):
            t.charge(Phase.REDUCE, 2.0)
    update = t.root.children[0]
    assert t.root.work == {Phase.MAP: 3.0, Phase.REDUCE: 2.0}
    assert update.work == {Phase.MAP: 3.0, Phase.REDUCE: 2.0}
    assert update.children[0].work == {Phase.MAP: 3.0}
    assert update.children[1].work == {Phase.REDUCE: 2.0}


def test_self_work_lands_only_on_innermost_span():
    t = Telemetry(label="x")
    with t.span("outer", SpanKind.PHASE):
        t.charge(Phase.MAP, 1.0)
        with t.span("inner", SpanKind.TASK):
            t.charge(Phase.MAP, 5.0)
    outer = t.root.children[0]
    inner = outer.children[0]
    assert outer.self_work == {Phase.MAP: 1.0}
    assert inner.self_work == {Phase.MAP: 5.0}
    assert outer.work == {Phase.MAP: 6.0}


def test_work_cursor_is_cumulative_charge():
    t = Telemetry(label="x")
    assert t.now() == 0.0
    t.charge(Phase.MAP, 2.5)
    t.charge(Phase.REDUCE, 1.5)
    assert t.now() == 4.0


def test_span_start_end_follow_cursor():
    t = Telemetry(label="x")
    t.charge(Phase.MAP, 1.0)
    with t.span("s", SpanKind.PHASE):
        t.charge(Phase.MAP, 3.0)
    span = t.root.children[0]
    assert span.start == 1.0
    assert span.end == 4.0
    assert span.duration() == 3.0


def test_out_of_order_close_raises():
    t = Telemetry(label="x")
    outer = t.open_span("outer", SpanKind.PHASE)
    t.open_span("inner", SpanKind.TASK)
    with pytest.raises(RuntimeError):
        t.close_span(outer)


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        Telemetry(label="x").charge(Phase.MAP, -0.1)


def test_record_span_is_preclosed_on_named_thread():
    t = Telemetry(label="x")
    span = t.record_span(
        "map:1#0", SpanKind.ATTEMPT, start=2.0, end=5.0, thread="m3.s1", ghost=False
    )
    assert not span.is_open
    assert span.thread == "m3.s1"
    assert span.attrs["ghost"] is False
    assert t.unclosed_spans() == []


def test_counters_and_instants():
    t = Telemetry(label="x")
    t.count("cache.hits")
    t.count("cache.hits", delta=2.0)
    t.gauge("queue.depth", 7.0, ts=1.0)
    t.instant("crash", ts=3.0, machine=2)
    assert t.counters["cache.hits"] == 3.0
    assert t.counters["queue.depth"] == 7.0
    assert [s[0] for s in t.counter_samples] == [
        "cache.hits",
        "cache.hits",
        "queue.depth",
    ]
    assert t.instants[0]["name"] == "crash"
    assert t.instants[0]["args"]["machine"] == 2


def test_snapshot_is_frozen_view():
    t = Telemetry(label="snap")
    with t.span("u", SpanKind.WINDOW_UPDATE):
        t.charge(Phase.MAP, 2.0)
    t.count("c")
    snap = t.snapshot()
    assert snap.label == "snap"
    assert snap.by_phase == {"map": 2.0}
    assert snap.counters == {"c": 1.0}
    assert snap.span_count >= 2
    assert snap.unclosed_spans == 0


def test_adopt_grafts_without_recharging():
    child = Telemetry(label="child")
    with child.span("batch", SpanKind.WINDOW_UPDATE):
        child.charge(Phase.MAP, 4.0)
    parent = Telemetry(label="parent")
    parent.charge(Phase.REDUCE, 1.0)
    grafted = parent.adopt(child, name="run-0")
    # The grafted subtree is visible but the parent's accounting is not
    # re-charged: child work stays attributed to the child tree only.
    assert parent.by_phase == {Phase.REDUCE: 1.0}
    assert grafted in parent.root.children
    names = [s.name for s in parent.iter_spans()]
    assert "batch" in names


def test_null_telemetry_accounts_but_records_nothing():
    t = NullTelemetry(label="off")
    with t.span("u", SpanKind.WINDOW_UPDATE):
        t.charge(Phase.MAP, 2.0)
    t.count("cache.hits")
    t.instant("crash")
    t.record_span("a", SpanKind.ATTEMPT, start=0.0, end=1.0)
    assert t.by_phase == {Phase.MAP: 2.0}
    assert t.now() == 2.0
    assert t.root.children == []
    assert t.counters == {}
    assert t.instants == []


def test_null_and_full_telemetry_by_phase_identical():
    charges = [(Phase.MAP, 0.1), (Phase.MAP, 0.7), (Phase.REDUCE, 1e-9)] * 50
    full, null = Telemetry(label="a"), NullTelemetry(label="b")
    for phase, amount in charges:
        with full.span("s", SpanKind.TASK):
            full.charge(phase, amount)
        with null.span("s", SpanKind.TASK):
            null.charge(phase, amount)
    assert full.by_phase == null.by_phase

"""Tests for the telemetry backbone."""

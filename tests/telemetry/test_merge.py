"""Cross-process merge properties: stats, counters, and span forests.

The process backend's bit-identity claim rests on three merge laws:

* :meth:`MemoStats.absorb` / :meth:`MemoStats.merge` — integer sums, so
  associative and order-independent;
* :func:`merge_counters` — same, for telemetry counters;
* event replay — a parent that replays each worker's ordered charge log
  (worker by worker) performs *exactly* the float additions a single
  process interleaving the same charges would, so per-phase totals are
  bit-identical, not merely close.  The hypothesis test drives that over
  random span forests with adversarial float amounts.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memo import MemoStats
from repro.metrics import Phase
from repro.telemetry import (
    CaptureTelemetry,
    SpanKind,
    Telemetry,
    graft_spans,
    merge_counters,
    replay_events,
)

# -- MemoStats ---------------------------------------------------------------

stats_records = st.builds(
    MemoStats,
    hits=st.integers(0, 1000),
    misses=st.integers(0, 1000),
    evictions=st.integers(0, 100),
    corruptions=st.integers(0, 10),
    skipped_stores=st.integers(0, 10),
)


@given(st.lists(stats_records, min_size=0, max_size=6))
def test_memo_stats_merge_is_order_independent(parts):
    merged = MemoStats.merge(parts)
    shuffled = list(parts)
    random.Random(7).shuffle(shuffled)
    assert MemoStats.merge(shuffled) == merged


@given(a=stats_records, b=stats_records, c=stats_records)
def test_memo_stats_merge_is_associative(a, b, c):
    import copy

    left = MemoStats.merge(
        [MemoStats.merge([copy.copy(a), copy.copy(b)]), copy.copy(c)]
    )
    right = MemoStats.merge(
        [copy.copy(a), MemoStats.merge([copy.copy(b), copy.copy(c)])]
    )
    assert left == right


def test_memo_stats_absorb_returns_self_and_sums():
    a = MemoStats(hits=2, misses=3)
    out = a.absorb(MemoStats(hits=5, evictions=1))
    assert out is a
    assert a == MemoStats(hits=7, misses=3, evictions=1)


# -- merge_counters ----------------------------------------------------------

counter_dicts = st.dictionaries(
    st.sampled_from(["memo.hits", "backend.dispatch_runs", "gc.dropped"]),
    st.integers(0, 10_000).map(float),
    max_size=3,
)


@given(st.lists(counter_dicts, min_size=0, max_size=6))
def test_merge_counters_order_independent(parts):
    merged = merge_counters(parts)
    shuffled = list(parts)
    random.Random(11).shuffle(shuffled)
    assert merge_counters(shuffled) == merged
    # Totals are plain sums per name.
    for name, value in merged.items():
        assert value == sum(part.get(name, 0) for part in parts)


@given(a=counter_dicts, b=counter_dicts, c=counter_dicts)
def test_merge_counters_associative(a, b, c):
    assert merge_counters([merge_counters([a, b]), c]) == merge_counters(
        [a, merge_counters([b, c])]
    )


# -- span-forest replay ------------------------------------------------------

#: Adversarial float amounts: spread magnitudes so addition order matters
#: (1e16 + 1.0 + ... loses bits differently under re-association).
amounts = st.floats(
    min_value=0.0, max_value=1e16, allow_nan=False, allow_infinity=False
)

#: One worker's program: open/close random spans, charge random phases.
#: ("span", depth-delta) interleaved with ("charge", phase, amount).
worker_programs = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.sampled_from(["a", "b", "c"])),
        st.just(("close",)),
        st.tuples(
            st.just("charge"),
            st.sampled_from([Phase.CONTRACTION, Phase.MEMO_READ, Phase.MAP]),
            amounts,
        ),
        st.tuples(st.just("count"), st.sampled_from(["x", "y"])),
    ),
    max_size=30,
)


def _run_worker(program):
    """Execute one program in a fresh capturing recorder (the worker side)."""
    telemetry = CaptureTelemetry(label="worker")
    depth = 0
    open_spans = []
    for op in program:
        if op[0] == "open":
            open_spans.append(telemetry.open_span(op[1], SpanKind.TASK))
            depth += 1
        elif op[0] == "close":
            if open_spans:
                telemetry.close_span(open_spans.pop())
                depth -= 1
        elif op[0] == "charge":
            telemetry.charge(op[1], op[2])
        else:
            telemetry.count(op[1])
    while open_spans:
        telemetry.close_span(open_spans.pop())
    return telemetry


@settings(max_examples=60, deadline=None)
@given(programs=st.lists(worker_programs, min_size=1, max_size=4))
def test_replayed_forest_totals_bit_identical_to_single_process(programs):
    """Parent replay of N worker logs == one process doing all the work."""
    workers = [_run_worker(program) for program in programs]

    # Single-process reference: the same charges in the same (worker by
    # worker, then program-order) sequence, on one recorder.
    reference = Telemetry(label="run")
    for program in programs:
        for op in program:
            if op[0] == "charge":
                reference.charge(op[1], op[2])
            elif op[0] == "count":
                reference.count(op[1])

    # The merge protocol: replay each worker's ordered log, then graft
    # its spans at the parent cursor — in worker order, like the
    # backend's reducer-order merge.
    parent = Telemetry(label="run")
    for worker in workers:
        offset = parent.now()
        replay_events(parent, worker.events)
        graft_spans(parent, worker.root.children, offset)

    assert dict(parent.by_phase) == dict(reference.by_phase)
    for phase, total in reference.by_phase.items():
        # Bit-identical, not approximately equal.
        assert math.copysign(1, parent.by_phase[phase]) == math.copysign(
            1, total
        )
        assert parent.by_phase[phase].hex() == total.hex()
    assert parent.counters == reference.counters
    # The grafted forest preserves every worker span (same shape count).
    assert parent.span_count() == 1 + sum(
        worker.span_count() - 1 for worker in workers
    )
    assert parent.unclosed_spans() == []


@settings(max_examples=30, deadline=None)
@given(programs=st.lists(worker_programs, min_size=1, max_size=3))
def test_grafted_spans_preserve_subtree_work_decomposition(programs):
    """After a graft, every span's inclusive work still bounds its
    children's — absorb_charge adds inclusive work to open parent spans
    without touching their self-work, keeping the decomposition sound."""
    parent = Telemetry(label="run")
    for program in programs:
        worker = _run_worker(program)
        offset = parent.now()
        replay_events(parent, worker.events)
        graft_spans(parent, worker.root.children, offset)

    def check(span):
        for phase in Phase:
            child_sum = sum(
                child.work.get(phase, 0.0) for child in span.children
            )
            slack = 1e-6 * max(1.0, abs(span.work.get(phase, 0.0)))
            assert child_sum <= span.work.get(phase, 0.0) + slack
        for child in span.children:
            check(child)

    check(parent.root)

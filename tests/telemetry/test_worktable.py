"""Per-level work table: asymptotic bounds observed on real runs."""

from repro.apps.registry import micro_benchmark_apps
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode
from repro.telemetry import (
    Phase,
    SpanKind,
    Telemetry,
    check_incremental_bounds,
    check_initial_run_bounds,
    format_level_table,
    per_level_table,
)

LEAVES = 8


def folding_run():
    spec = next(s for s in micro_benchmark_apps() if s.name == "hct")
    telemetry = Telemetry(label="worktable")
    slider = Slider(
        spec.make_job(),
        WindowMode.VARIABLE,
        config=SliderConfig(mode=WindowMode.VARIABLE, tree="folding"),
        telemetry=telemetry,
    )
    slider.initial_run(spec.make_splits(LEAVES, 17, 0))
    slider.advance(spec.make_splits(2, 17, LEAVES), 2)
    return telemetry, slider.job.num_reducers


def test_initial_run_obeys_per_level_bound():
    telemetry, trees = folding_run()
    initial = telemetry.root.children[0]
    rows = per_level_table(initial, tree="fold")
    assert rows, "no TREE_LEVEL spans recorded"
    # Levels are contiguous from 1 and halve the frontier.
    assert [row.level for row in rows] == list(range(1, len(rows) + 1))
    assert check_initial_run_bounds(rows, LEAVES, trees=trees) == []


def test_incremental_run_obeys_per_level_bound():
    telemetry, trees = folding_run()
    incremental = telemetry.root.children[1]
    rows = per_level_table(incremental, tree="fold")
    assert rows
    assert check_incremental_bounds(rows, 2, 2, trees=trees) == []
    # The slide touches far fewer tasks per level than a rebuild would.
    initial_rows = per_level_table(telemetry.root.children[0], tree="fold")
    assert rows[0].tasks < initial_rows[0].tasks


def test_level_work_is_exact_sum_of_charges():
    telemetry, _ = folding_run()
    rows = per_level_table(telemetry, tree="fold")
    # Each row's work equals its own phase breakdown's sum, and all level
    # work is a subset of the contraction/memo charges of the whole run.
    for row in rows:
        assert row.work == sum(row.by_phase.values())
    total_level_work = sum(row.work for row in rows)
    backbone = telemetry.by_phase
    tracked = sum(
        backbone.get(p, 0.0)
        for p in (Phase.CONTRACTION, Phase.MEMO_READ, Phase.MEMO_WRITE)
    )
    assert total_level_work <= tracked + 1e-9


def test_tree_filter_separates_variants():
    telemetry, _ = folding_run()
    assert per_level_table(telemetry, tree="rot") == []
    assert per_level_table(telemetry, tree="fold")


def test_format_level_table_renders_totals():
    telemetry, _ = folding_run()
    rows = per_level_table(telemetry, tree="fold")
    rendered = format_level_table(rows, title="per-level (fold)")
    assert "per-level (fold)" in rendered
    assert "total" in rendered


def test_synthetic_bound_violation_is_reported():
    t = Telemetry(label="synthetic")
    with t.span("lvl", SpanKind.TREE_LEVEL, tree="fold", level=3):
        for i in range(9):
            with t.span(f"task{i}", SpanKind.TASK):
                t.charge(Phase.CONTRACTION, 1.0)
    rows = per_level_table(t, tree="fold")
    assert rows[0].tasks == 9
    assert check_initial_run_bounds(rows, 8, trees=1)  # 9 > ceil(8/8)=1
    assert check_incremental_bounds(rows, 2, 2, trees=1)  # 9 > 1+1+2

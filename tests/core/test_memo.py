"""Unit tests for the memo table."""

from repro.core.memo import MemoTable
from repro.core.partition import Partition
from repro.metrics import Phase, WorkMeter


def test_lookup_miss_then_hit():
    table = MemoTable()
    assert table.lookup(1) is None
    assert table.stats.misses == 1
    table.store(1, Partition({"k": 1}))
    assert table.lookup(1) == Partition({"k": 1})
    assert table.stats.hits == 1


def test_get_or_compute_runs_once():
    table = MemoTable()
    calls = []

    def compute():
        calls.append(1)
        return Partition({"k": 2})

    first = table.get_or_compute(7, compute)
    second = table.get_or_compute(7, compute)
    assert first == second
    assert len(calls) == 1


def test_get_or_compute_charges_costs():
    table = MemoTable()
    meter = WorkMeter()
    table.get_or_compute(
        1, lambda: Partition({"k": 1}), meter=meter, write_cost=0.5
    )
    assert meter.by_phase[Phase.MEMO_WRITE] == 0.5
    table.get_or_compute(
        1, lambda: Partition({"k": 1}), meter=meter, read_cost=0.25
    )
    assert meter.by_phase[Phase.MEMO_READ] == 0.25


def test_discard_counts_evictions():
    table = MemoTable()
    table.store(1, Partition({"k": 1}))
    table.discard(1)
    table.discard(99)  # absent: no eviction counted
    assert table.stats.evictions == 1
    assert table.lookup(1) is None


def test_retain_only():
    table = MemoTable()
    for uid in range(5):
        table.store(uid, Partition({"k": uid}))
    dropped = table.retain_only({0, 2})
    assert dropped == 3
    assert len(table) == 2
    assert table.space() == 2.0


def test_hit_rate():
    table = MemoTable()
    table.store(1, Partition({"k": 1}))
    table.lookup(1)
    table.lookup(2)
    assert table.stats.hit_rate == 0.5
    assert MemoTable().stats.hit_rate == 0.0


def test_hit_rate_is_a_plain_float():
    # the deprecated callable-float shim is gone
    table = MemoTable()
    table.store(1, Partition({"k": 1}))
    table.lookup(1)
    assert type(table.stats.hit_rate) is float
    assert not callable(table.stats.hit_rate)


def _corrupted(value: Partition) -> Partition:
    """A copy whose entries diverged from the recorded fingerprint."""
    entries = dict(value.entries)
    entries["\x00bitrot"] = 1
    return Partition(entries, uid=value.uid)


def test_paranoid_verify_drops_corrupt_entry():
    table = MemoTable(verify_mode="paranoid")
    good = Partition({"k": 1})
    table.store(7, good)
    table.entries[7] = _corrupted(good)
    assert table.lookup(7) is None
    assert table.stats.corruptions == 1
    assert 7 not in table.entries


def test_tainted_mode_verifies_once_after_taint():
    table = MemoTable()  # default verify_mode="tainted"
    good = Partition({"k": 1})
    table.store(7, good)
    table.entries[7] = _corrupted(good)
    # Untainted: the corrupt entry is served (verification is lazy).
    assert table.lookup(7) is not None
    table.taint({7})
    assert table.lookup(7) is None
    assert table.stats.corruptions == 1


def test_taint_clears_on_successful_verify():
    table = MemoTable()
    table.store(7, Partition({"k": 1}))
    table.taint()  # no argument: taint everything known
    assert table.lookup(7) is not None
    assert 7 not in table._tainted
    assert table.stats.corruptions == 0


def test_verify_off_serves_anything():
    table = MemoTable(verify_mode="off")
    good = Partition({"k": 1})
    table.store(7, good)
    table.entries[7] = _corrupted(good)
    table.taint({7})
    assert table.lookup(7) is not None
    assert table.stats.corruptions == 0


def test_capacity_budget_skips_stores():
    table = MemoTable(capacity=1)
    table.store(1, Partition({"a": 1}))
    table.store(2, Partition({"b": 2}))  # over budget: skipped
    table.store(1, Partition({"a": 3}))  # replacing a held uid is fine
    assert len(table) == 1
    assert table.stats.skipped_stores == 1
    assert table.lookup(2) is None


class _FailingBacking:
    def fetch(self, uid):
        raise OSError("backing store unavailable")

    def put(self, uid, value):
        raise OSError("backing store unavailable")

    def delete(self, uid):
        raise OSError("backing store unavailable")


def test_backing_failure_degrades_instead_of_raising():
    table = MemoTable(backing=_FailingBacking())
    table.store(1, Partition({"a": 1}))  # put fails -> degraded, kept local
    assert table.degraded
    assert table.lookup(1) is not None  # local entry still serves
    assert table.lookup(2) is None  # no backing consult once degraded

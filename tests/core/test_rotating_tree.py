"""Unit tests for the rotating contraction tree (§4.1)."""

import pytest

from repro.common.errors import CombinerContractError, WindowError
from repro.core.rotating import RotatingTree
from repro.mapreduce.combiners import ListConcatCombiner, SumCombiner
from repro.metrics import Phase

from tests.conftest import leaf_seq, root_total


def make_tree(**kwargs) -> RotatingTree:
    return RotatingTree(SumCombiner(), **kwargs)


def test_initial_run_with_buckets():
    tree = make_tree(bucket_size=2)
    root = tree.initial_run(leaf_seq([1, 2, 3, 4, 5, 6, 7, 8]))
    assert root_total(root) == 36
    assert tree.num_buckets == 4
    assert tree.height == 2


def test_noncommutative_combiner_rejected():
    with pytest.raises(CombinerContractError):
        RotatingTree(ListConcatCombiner())


def test_initial_run_requires_whole_buckets():
    tree = make_tree(bucket_size=2)
    with pytest.raises(WindowError):
        tree.initial_run(leaf_seq([1, 2, 3]))


def test_initial_run_requires_nonempty():
    with pytest.raises(WindowError):
        make_tree().initial_run([])


def test_advance_must_be_fixed_width():
    tree = make_tree(bucket_size=1)
    tree.initial_run(leaf_seq([1, 2, 3, 4]))
    with pytest.raises(WindowError):
        tree.advance(leaf_seq([5]), removed=2)


def test_advance_must_be_whole_buckets():
    tree = make_tree(bucket_size=2)
    tree.initial_run(leaf_seq([1, 2, 3, 4]))
    with pytest.raises(WindowError):
        tree.advance(leaf_seq([5]), removed=1)


def test_rotation_replaces_oldest():
    """Figure 4(a): window=8, slide=2, bucket 4 replaces bucket 0."""
    tree = make_tree(bucket_size=2)
    tree.initial_run(leaf_seq([1, 2, 3, 4, 5, 6, 7, 8]))
    root = tree.advance(leaf_seq([10, 20]), removed=2)
    assert root_total(root) == 3 + 4 + 5 + 6 + 7 + 8 + 10 + 20
    assert root.entries == tree.reference_root().entries


def test_many_rotations_stay_correct():
    tree = make_tree(bucket_size=1)
    window = [1, 2, 3, 4, 5, 6, 7, 8]
    tree.initial_run(leaf_seq(window))
    counter = 0
    for step in range(20):
        new_value = 100 + step
        window = window[1:] + [new_value]
        from repro.core.partition import Partition

        leaf = Partition({"total": new_value, ("leaf", 1000 + counter): 1})
        counter += 1
        root = tree.advance([leaf], removed=1)
        assert root_total(root) == sum(window)


def test_update_cost_is_logarithmic():
    tree = make_tree(bucket_size=1)
    n = 64
    tree.initial_run(leaf_seq(list(range(n))))
    before = tree.stats.combiner_invocations
    tree.advance(leaf_seq([999]), removed=1)
    recomputed = tree.stats.combiner_invocations - before
    assert recomputed <= tree.height + 2


def test_split_mode_foreground_uses_precomputed_intermediate():
    tree = make_tree(bucket_size=2, split_mode=True)
    tree.initial_run(leaf_seq([1, 2, 3, 4, 5, 6, 7, 8]))
    tree.background_preprocess()
    bg_work = tree.meter.by_phase.get(Phase.BACKGROUND, 0.0)
    assert bg_work > 0

    fg_before = tree.meter.foreground_total()
    root = tree.advance(leaf_seq([10, 20]), removed=2)
    fg_work = tree.meter.foreground_total() - fg_before
    assert root_total(root) == 3 + 4 + 5 + 6 + 7 + 8 + 10 + 20

    # Foreground with split processing beats the unsplit update path.
    unsplit = make_tree(bucket_size=2)
    unsplit.initial_run(leaf_seq([1, 2, 3, 4, 5, 6, 7, 8]))
    base_before = unsplit.meter.total()
    unsplit.advance(leaf_seq([10, 20]), removed=2)
    unsplit_work = unsplit.meter.total() - base_before
    assert fg_work < unsplit_work


def test_split_mode_stays_correct_across_rounds():
    tree = make_tree(bucket_size=1, split_mode=True)
    window = [1, 2, 3, 4]
    tree.initial_run(leaf_seq(window))
    from repro.core.partition import Partition

    for step in range(12):
        tree.background_preprocess()
        new_value = 50 + step
        window = window[1:] + [new_value]
        leaf = Partition({"total": new_value, ("leaf", 2000 + step): 1})
        root = tree.advance([leaf], removed=1)
        assert root_total(root) == sum(window)
        assert root.entries == tree.reference_root().entries


def test_split_mode_without_background_still_correct():
    """Background is best-effort; skipping it must not corrupt results."""
    tree = make_tree(bucket_size=1, split_mode=True)
    window = [1, 2, 3, 4]
    tree.initial_run(leaf_seq(window))
    from repro.core.partition import Partition

    for step in range(6):
        if step % 2 == 0:
            tree.background_preprocess()
        new_value = 70 + step
        window = window[1:] + [new_value]
        leaf = Partition({"total": new_value, ("leaf", 3000 + step): 1})
        root = tree.advance([leaf], removed=1)
        assert root_total(root) == sum(window)


def test_multi_bucket_slide():
    tree = make_tree(bucket_size=1)
    tree.initial_run(leaf_seq([1, 2, 3, 4]))
    root = tree.advance(leaf_seq([10, 20]), removed=2)
    assert root_total(root) == 3 + 4 + 10 + 20

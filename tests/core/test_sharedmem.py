"""Unit tests for the shared-memory memo store."""

import pickle

import pytest

from repro.common.errors import MemoStoreFull
from repro.core.memo import MemoStore, MemoTable
from repro.core.partition import Partition
from repro.core.sharedmem import SharedMemoStore, SharedNamespace


@pytest.fixture
def store():
    s = SharedMemoStore(namespaces=2, segment_bytes=1 << 20, slots=64)
    yield s
    s.close()


def part(i, keys=1):
    return Partition({f"k{i}-{j}": i for j in range(keys)})


class TestStoreBasics:
    def test_put_get_roundtrip(self, store):
        store.put(0, 7, part(1))
        assert store.get(0, 7) == part(1)
        assert store.get(0, 8) is None
        assert store.get(1, 7) is None  # namespaces are disjoint

    def test_overwrite_replaces_and_reaccounts(self, store):
        store.put(0, 7, part(1, keys=3))
        store.put(0, 7, part(2, keys=5))
        assert store.get(0, 7) == part(2, keys=5)
        assert store.count(0) == 1
        assert store.key_count(0) == 5

    def test_delete(self, store):
        store.put(0, 7, part(1))
        assert store.delete(0, 7)
        assert store.get(0, 7) is None
        assert not store.delete(0, 7)
        assert store.count(0) == 0 and store.key_count(0) == 0

    def test_keys_iterate_in_insertion_order(self, store):
        for key in (9, 3, 17, 5):
            store.put(0, key, part(key))
        store.put(1, 99, part(99))  # other namespace is invisible
        assert store.keys(0) == [9, 3, 17, 5]
        store.delete(0, 17)
        assert store.keys(0) == [9, 3, 5]

    def test_overwrite_keeps_first_insertion_position(self, store):
        for key in (1, 2, 3):
            store.put(0, key, part(key))
        store.put(0, 1, part(10))
        # The blob moved to the end of the data region, but only the
        # live (re-pointed) copy is reported — once.
        assert sorted(store.keys(0)) == [1, 2, 3]
        assert store.count(0) == 3

    def test_clear_is_per_namespace(self, store):
        store.put(0, 1, part(1))
        store.put(1, 2, part(2))
        store.clear(0)
        assert store.count(0) == 0
        assert store.get(0, 1) is None
        assert store.get(1, 2) == part(2)

    def test_counters_are_o1_header_reads(self, store):
        for key in range(10):
            store.put(0, key, part(key, keys=2))
        assert store.count(0) == 10
        assert store.key_count(0) == 20

    def test_namespace_out_of_range(self, store):
        with pytest.raises(ValueError):
            store.put(2, 1, part(1))
        with pytest.raises(ValueError):
            store.count(-1)

    def test_handles_are_never_picklable(self, store):
        with pytest.raises(TypeError):
            pickle.dumps(store)
        with pytest.raises(TypeError):
            pickle.dumps(store.namespace(0))

    def test_segment_must_fit_header_and_index(self):
        with pytest.raises(ValueError):
            SharedMemoStore(namespaces=1, segment_bytes=512, slots=1 << 14)
        with pytest.raises(ValueError):
            SharedMemoStore(namespaces=0)


class TestCompactionAndFull:
    def test_compaction_reclaims_dead_bytes(self):
        store = SharedMemoStore(namespaces=1, segment_bytes=1 << 15, slots=64)
        try:
            big = Partition({f"k{i}": i for i in range(200)})
            # Repeated overwrites leave dead blobs; without compaction
            # ~30 rewrites of a ~4KiB payload overflow the 32KiB segment.
            for _ in range(50):
                store.put(0, 1, big)
            assert store.get(0, 1) == big
            assert store.count(0) == 1
        finally:
            store.close()

    def test_compaction_during_overwrite_keeps_index_valid(self):
        store = SharedMemoStore(namespaces=1, segment_bytes=1 << 15, slots=64)
        try:
            big = Partition({f"k{i}": i for i in range(150)})
            for key in (1, 2, 3):
                store.put(0, key, big)
            # Overwrite in a loop: the append path compacts mid-put, so
            # the pre-append probe result would be stale — every survivor
            # must still resolve afterwards.
            for round_ in range(30):
                store.put(0, 2, Partition({f"r{round_}-{i}": i for i in range(150)}))
                assert store.get(0, 1) == big
                assert store.get(0, 3) == big
            assert store.count(0) == 3
        finally:
            store.close()

    def test_store_full_when_even_compaction_cannot_help(self):
        store = SharedMemoStore(namespaces=1, segment_bytes=1 << 14, slots=64)
        try:
            huge = Partition({f"key-{i}": float(i) for i in range(2000)})
            with pytest.raises(MemoStoreFull):
                store.put(0, 1, huge)
        finally:
            store.close()

    def test_index_full_raises(self):
        store = SharedMemoStore(namespaces=1, segment_bytes=1 << 20, slots=8)
        try:
            for key in range(8):
                store.put(0, key, part(key))
            with pytest.raises(MemoStoreFull):
                store.put(0, 100, part(100))
            # Deleting re-opens a slot (after the compaction retry).
            store.delete(0, 3)
            store.put(0, 100, part(100))
            assert store.get(0, 100) == part(100)
        finally:
            store.close()

    def test_crc_rot_reads_as_miss(self, store):
        store.put(0, 5, part(5))
        # Flip a payload byte behind the store's back.
        head = store._get(8)  # data head: the blob sits at data_start
        payload_byte = store._data_start + 24  # past the blob header
        store._buf[payload_byte] ^= 0xFF
        assert store.get(0, 5) is None          # rot -> miss
        assert store.count(0) == 0               # entry was tombstoned
        store.put(0, 5, part(6))                 # recompute path re-stores
        assert store.get(0, 5) == part(6)
        assert store._get(8) > head


class TestSharedNamespace:
    def test_satisfies_memo_store_protocol(self, store):
        ns = store.namespace(0)
        assert isinstance(ns, MemoStore)

    def test_mapping_semantics(self, store):
        ns = store.namespace(0)
        ns[1] = part(1)
        assert ns[1] == part(1)
        assert 1 in ns and 2 not in ns
        with pytest.raises(KeyError):
            ns[2]
        with pytest.raises(KeyError):
            del ns[2]
        ns[2] = part(2)
        assert len(ns) == 2
        assert list(ns) == [1, 2]
        assert ns.get(3) is None
        del ns[1]
        assert len(ns) == 1
        ns.clear()
        assert len(ns) == 0

    def test_space_is_key_count(self, store):
        ns = store.namespace(0)
        ns[1] = part(1, keys=4)
        ns[2] = part(2, keys=3)
        assert ns.space() == 7.0

    def test_memo_table_runs_over_shared_namespace(self, store):
        table = MemoTable(entries=store.namespace(0))
        table.store(1, part(1))
        assert table.lookup(1) == part(1)
        assert table.lookup(2) is None
        assert table.space() == 1.0
        assert len(table) == 1

    def test_memo_table_store_full_degrades_not_raises(self):
        store = SharedMemoStore(namespaces=1, segment_bytes=1 << 14, slots=16)
        try:
            table = MemoTable(entries=store.namespace(0))
            huge = Partition({f"key-{i}": float(i) for i in range(2000)})
            table.store(1, huge)  # silently skipped, counted
            assert table.lookup(1) is None
            assert table.stats.skipped_stores == 1
        finally:
            store.close()

"""Unit tests for the per-run task-graph IR."""

import pytest

from repro.core.partition import Partition
from repro.core.taskgraph import NODE_KINDS, GraphRecorder, TaskGraph
from repro.metrics import Phase


def part(items):
    return Partition(dict(items))


class TestTaskGraph:
    def test_add_assigns_sequential_uids(self):
        graph = TaskGraph()
        a = graph.add("map", Phase.MAP, cost=1.0)
        b = graph.add("combine", Phase.CONTRACTION, deps=(a.uid,))
        assert (a.uid, b.uid) == (0, 1)
        assert len(graph) == 2
        assert graph.node(1).deps == (0,)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown node kind"):
            TaskGraph().add("teleport", Phase.MAP)

    def test_forward_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(ValueError, match="does not exist"):
            graph.add("map", Phase.MAP, deps=(3,))

    def test_deps_deduplicated_and_sorted(self):
        graph = TaskGraph()
        for _ in range(3):
            graph.add("map", Phase.MAP)
        node = graph.add("combine", Phase.CONTRACTION, deps=(2, 0, 2, 1))
        assert node.deps == (0, 1, 2)

    def test_producer_wiring(self):
        graph = TaskGraph()
        value = part([("a", 1)])
        node = graph.add("map", Phase.MAP)
        graph.set_producer(value, node.uid)
        assert graph.producer_of(value) == node.uid
        assert graph.deps_of([value, part([("b", 2)])]) == (node.uid,)

    def test_empty_partition_never_registered(self):
        graph = TaskGraph()
        node = graph.add("map", Phase.MAP)
        graph.set_producer(Partition.empty(), node.uid)
        assert graph.producer_of(Partition.empty()) is None
        assert graph.deps_of([Partition.empty()]) == ()

    def test_work_views(self):
        graph = TaskGraph()
        graph.add("map", Phase.MAP, cost=2.0)
        graph.add("map", Phase.MAP, cost=3.0)
        graph.add("reduce", Phase.REDUCE, cost=5.0)
        assert graph.work_by_phase() == {Phase.MAP: 5.0, Phase.REDUCE: 5.0}
        assert graph.total_work() == 10.0
        assert graph.counts_by_kind() == {"map": 2, "reduce": 1}

    def test_topological_order_is_construction_order(self):
        graph = TaskGraph()
        a = graph.add("map", Phase.MAP)
        b = graph.add("shuffle", Phase.SHUFFLE, deps=(a.uid,))
        graph.add("combine", Phase.CONTRACTION, deps=(b.uid,))
        assert graph.topological_order() == [0, 1, 2]

    def test_critical_path_follows_heaviest_chain(self):
        # Diamond: a(1) -> {b(10), c(2)} -> d(3).
        graph = TaskGraph()
        a = graph.add("map", Phase.MAP, cost=1.0)
        b = graph.add("combine", Phase.CONTRACTION, cost=10.0, deps=(a.uid,))
        c = graph.add("combine", Phase.CONTRACTION, cost=2.0, deps=(a.uid,))
        d = graph.add(
            "reduce", Phase.REDUCE, cost=3.0, deps=(b.uid, c.uid)
        )
        downstream = graph.critical_path_costs()
        assert downstream[d.uid] == 3.0
        assert downstream[b.uid] == 13.0
        assert downstream[c.uid] == 5.0
        assert downstream[a.uid] == 14.0
        assert graph.critical_path_length() == 14.0

    def test_critical_path_of_empty_graph(self):
        assert TaskGraph().critical_path_length() == 0.0


class TestGraphRecorder:
    def test_inactive_outside_run(self):
        recorder = GraphRecorder()
        assert not recorder.active
        # Every recording call is a no-op before begin_run.
        recorder.map_task(1, [part([("a", 1)])], map_cost=1.0, shuffle_cost=1.0)
        recorder.memo_read(part([("a", 1)]), cost=0.1)
        recorder.reduce_key(part([("a", 1)]), "a", cost=1.0)
        assert recorder.last_graph is None

    def test_run_lifecycle(self):
        recorder = GraphRecorder()
        graph = recorder.begin_run("r0")
        assert recorder.active
        recorder.map_task(7, [part([("a", 1)])], map_cost=2.0, shuffle_cost=1.0)
        closed = recorder.end_run()
        assert closed is graph
        assert recorder.last_graph is graph
        assert not recorder.active
        assert graph.counts_by_kind() == {"map": 1, "shuffle": 1}

    def test_map_task_chains_shuffle_and_registers_outputs(self):
        recorder = GraphRecorder()
        recorder.begin_run()
        outputs = [part([("a", 1)]), part([("b", 2)])]
        recorder.map_task(7, outputs, map_cost=2.0, shuffle_cost=1.0)
        graph = recorder.end_run()
        map_node, shuffle_node = graph.nodes
        assert map_node.kind == "map" and map_node.split_uid == 7
        assert shuffle_node.deps == (map_node.uid,)
        # Downstream consumers of the outputs depend on the chain's tail.
        assert graph.producer_of(outputs[0]) == shuffle_node.uid
        assert graph.producer_of(outputs[1]) == shuffle_node.uid

    def test_combine_wires_deps_through_partitions(self):
        recorder = GraphRecorder()
        recorder.begin_run()
        left, right = part([("a", 1)]), part([("b", 2)])
        recorder.map_task(1, [left], map_cost=1.0, shuffle_cost=0.0)
        recorder.map_task(2, [right], map_cost=1.0, shuffle_cost=0.0)
        result = part([("a", 1), ("b", 2)])
        node = recorder.combine(
            [left, right], result, Phase.CONTRACTION, cost=2.0
        )
        graph = recorder.end_run()
        assert node.deps == (0, 1)
        assert graph.producer_of(result) == node.uid

    def test_combine_ignores_prior_run_inputs(self):
        """Values carried over from earlier runs are initial state."""
        recorder = GraphRecorder()
        recorder.begin_run()
        stale = part([("old", 1)])  # never produced this run
        node = recorder.combine(
            [stale], part([("old", 1)]), Phase.CONTRACTION, cost=1.0
        )
        recorder.end_run()
        assert node.deps == ()

    def test_reducer_context_tags_nodes(self):
        recorder = GraphRecorder()
        recorder.begin_run()
        with recorder.reducer_context(3):
            node = recorder.combine(
                [], part([("a", 1)]), Phase.CONTRACTION, cost=1.0
            )
        assert node.reducer == 3
        assert recorder.reducer is None

    def test_memo_write_depends_on_its_combine(self):
        recorder = GraphRecorder()
        recorder.begin_run()
        value = part([("a", 1)])
        node = recorder.combine([], value, Phase.CONTRACTION, cost=1.0)
        recorder.memo_write(node, value, cost=0.5, memo_uid=9)
        graph = recorder.end_run()
        write = graph.nodes[-1]
        assert write.kind == "memo_write"
        assert write.deps == (node.uid,)
        assert write.memo_uid == 9

    def test_all_node_kinds_are_valid(self):
        graph = TaskGraph()
        for kind in NODE_KINDS:
            graph.add(kind, Phase.MAP)
        assert len(graph) == len(NODE_KINDS)

"""Unit tests for the self-adjusting folding tree (§3.1)."""

import pytest

from repro.core.folding import FoldingTree
from repro.mapreduce.combiners import SumCombiner

from tests.conftest import leaf_seq, root_total


def make_tree(**kwargs) -> FoldingTree:
    return FoldingTree(SumCombiner(), **kwargs)


def test_initial_run_computes_root():
    tree = make_tree()
    root = tree.initial_run(leaf_seq([1, 2, 3]))
    assert root_total(root) == 6


def test_initial_run_height_is_ceil_log2():
    tree = make_tree()
    tree.initial_run(leaf_seq([1] * 5))
    assert tree.height == 3
    assert tree.capacity == 8


def test_initial_run_single_leaf():
    tree = make_tree()
    root = tree.initial_run(leaf_seq([7]))
    assert root_total(root) == 7
    assert tree.height == 0


def test_initial_run_empty_window():
    tree = make_tree()
    root = tree.initial_run([])
    assert not root
    assert tree.size == 0


def test_advance_before_initial_run_rejected():
    tree = make_tree()
    with pytest.raises(RuntimeError):
        tree.advance(leaf_seq([1]), 0)


def test_double_initial_run_rejected():
    tree = make_tree()
    tree.initial_run(leaf_seq([1]))
    with pytest.raises(RuntimeError):
        tree.initial_run(leaf_seq([2]))


def test_append_fills_void_nodes():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2, 3]))  # capacity 4, one void
    root = tree.advance(leaf_seq([10]), 0)
    assert root_total(root) == 16
    assert tree.height == 2  # no unfold needed


def test_append_unfolds_when_full():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2, 3, 4]))
    assert tree.height == 2
    root = tree.advance(leaf_seq([5]), 0)
    assert root_total(root) == 15
    assert tree.height == 3  # tree doubled (Figure 2, T2)


def test_remove_folds_left_half():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2, 3, 4]))
    root = tree.advance([], removed=2)
    assert root_total(root) == 7
    assert tree.height == 1  # left half void -> fold (Figure 2, T3)


def test_figure2_scenario():
    """Replays the paper's Figure 2 slide sequence."""
    tree = make_tree()
    values = [1, 2, 4, 8, 16, 32, 64, 128]
    root = tree.initial_run(leaf_seq(values[:3]))  # T1: leaves 0..2
    assert root_total(root) == 7
    assert tree.height == 2

    # T2: add 2, remove 1 -> leaves 1..4
    root = tree.advance(leaf_seq(values[3:5]), removed=1)
    assert root_total(root) == 2 + 4 + 8 + 16
    assert tree.height == 3

    # T3: add 3, remove 3 -> leaves 4..7
    root = tree.advance(leaf_seq(values[5:8]), removed=3)
    assert root_total(root) == 16 + 32 + 64 + 128
    assert tree.height == 2


def test_remove_all_then_refill():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2]))
    root = tree.advance([], removed=2)
    assert not root
    root = tree.advance(leaf_seq([5, 6]), 0)
    assert root_total(root) == 11


def test_remove_more_than_window_rejected():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2]))
    with pytest.raises(ValueError):
        tree.advance([], removed=3)


def test_incremental_matches_reference_many_slides():
    tree = make_tree()
    values = list(range(1, 9))
    tree.initial_run(leaf_seq(values))
    slides = [(2, [9, 10]), (1, []), (0, [11, 12, 13]), (5, [14]), (3, [])]
    window = values[:]
    counter = 100
    for removed, new_values in slides:
        window = window[removed:] + new_values
        leaves = [
            _unique_leaf(v, i) for i, v in enumerate(new_values, start=counter)
        ]
        counter += len(new_values)
        root = tree.advance(leaves, removed=removed)
        assert root_total(root) == sum(window)
        assert root.entries == tree.reference_root().entries


def _unique_leaf(value, tag):
    from repro.core.partition import Partition

    return Partition({"total": value, ("leaf", tag): 1})


def test_incremental_work_less_than_rebuild_for_small_delta():
    """The defining property: delta work << window work.

    Uses aggregating leaves (one shared key) so per-node merge cost is
    constant and the update path costs O(log n) of the O(n) build.
    """
    from repro.core.partition import Partition

    big = [Partition({"total": v}) for v in range(256)]
    tree = make_tree()
    tree.initial_run(big)
    initial_work = tree.meter.total()

    before = tree.meter.total()
    tree.advance([Partition({"total": 999})], removed=1)
    delta_work = tree.meter.total() - before
    # One slide should cost a tiny fraction of building the whole tree.
    assert delta_work < initial_work / 8


def test_rebuild_factor_shrinks_capacity():
    tree = make_tree(rebuild_factor=4)
    tree.initial_run(leaf_seq(list(range(64))))
    assert tree.capacity == 64
    tree.advance(leaf_seq([1]), removed=60)  # window now 5 leaves
    assert tree.capacity <= 4 * tree.size


def test_rebuild_factor_validation():
    with pytest.raises(ValueError):
        make_tree(rebuild_factor=1)


def test_stats_track_reuse():
    tree = make_tree()
    tree.initial_run(leaf_seq(list(range(16))))
    invocations_initial = tree.stats.combiner_invocations
    tree.advance(leaf_seq([99]), removed=1)
    delta_invocations = tree.stats.combiner_invocations - invocations_initial
    # Path recomputation only: about 2*height invocations, far below 15.
    assert delta_invocations <= 2 * (tree.height + 1)

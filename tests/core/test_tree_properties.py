"""Property-based tests: every tree must match batch recomputation.

The fundamental correctness invariant of self-adjusting contraction trees
is output equivalence: after any legal sequence of slides, the root equals
the non-incremental combination of the current window's leaves.  Hypothesis
drives arbitrary slide sequences against each variant.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.partition import Partition, combine_partitions
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.mapreduce.combiners import MaxCombiner, SumCombiner


def _leaf(tag: int, value: int) -> Partition:
    # A couple of shared keys plus one unique key: exercises both merge
    # paths (real merges and single-value pass-through).
    return Partition({"sum": value, "tag": value % 3, ("u", tag): value})


def _expected(window: list[tuple[int, int]]) -> Partition:
    return combine_partitions([_leaf(t, v) for t, v in window], SumCombiner())


# A slide: (number of leaves to remove, values to append).
slides = st.lists(
    st.tuples(st.integers(0, 6), st.lists(st.integers(-50, 50), max_size=6)),
    max_size=12,
)
initial_values = st.lists(st.integers(-50, 50), max_size=16)


def _drive(tree, initial: list[int], slide_seq) -> None:
    counter = len(initial)
    window = list(enumerate(initial))
    tree.initial_run([_leaf(t, v) for t, v in window])
    for removed, added_values in slide_seq:
        removed = min(removed, len(window))
        added = [(counter + i, v) for i, v in enumerate(added_values)]
        counter += len(added_values)
        window = window[removed:] + added
        root = tree.advance([_leaf(t, v) for t, v in added], removed)
        expected = _expected(window)
        assert root.entries == expected.entries, (
            f"divergence after remove={removed} add={added_values}"
        )


@settings(max_examples=60, deadline=None)
@given(initial=initial_values, slide_seq=slides)
def test_folding_tree_matches_batch(initial, slide_seq):
    _drive(FoldingTree(SumCombiner()), initial, slide_seq)


@settings(max_examples=40, deadline=None)
@given(initial=initial_values, slide_seq=slides)
def test_folding_tree_with_rebuild_matches_batch(initial, slide_seq):
    _drive(FoldingTree(SumCombiner(), rebuild_factor=4), initial, slide_seq)


@settings(max_examples=60, deadline=None)
@given(initial=initial_values, slide_seq=slides, seed=st.integers(0, 1000))
def test_randomized_tree_matches_batch(initial, slide_seq, seed):
    _drive(RandomizedFoldingTree(SumCombiner(), seed=seed), initial, slide_seq)


@settings(max_examples=40, deadline=None)
@given(initial=initial_values, slide_seq=slides)
def test_strawman_tree_matches_batch(initial, slide_seq):
    _drive(StrawmanTree(SumCombiner()), initial, slide_seq)


@settings(max_examples=60, deadline=None)
@given(
    window_buckets=st.integers(1, 8),
    bucket_size=st.integers(1, 3),
    rounds=st.integers(0, 8),
    values=st.data(),
    split_mode=st.booleans(),
)
def test_rotating_tree_matches_batch(
    window_buckets, bucket_size, rounds, values, split_mode
):
    width = window_buckets * bucket_size
    counter = 0

    def draw_leaves(n):
        nonlocal counter
        out = []
        for _ in range(n):
            value = values.draw(st.integers(-50, 50))
            out.append((counter, value))
            counter += 1
        return out

    window = draw_leaves(width)
    tree = RotatingTree(
        SumCombiner(), bucket_size=bucket_size, split_mode=split_mode
    )
    tree.initial_run([_leaf(t, v) for t, v in window])
    for round_index in range(rounds):
        if split_mode and round_index % 2 == 0:
            tree.background_preprocess()
        added = draw_leaves(bucket_size)
        window = window[bucket_size:] + added
        root = tree.advance([_leaf(t, v) for t, v in added], bucket_size)
        assert root.entries == _expected(window).entries


@settings(max_examples=60, deadline=None)
@given(
    initial=initial_values,
    appends=st.lists(st.lists(st.integers(-50, 50), max_size=5), max_size=8),
    split_mode=st.booleans(),
)
def test_coalescing_tree_matches_batch(initial, appends, split_mode):
    counter = len(initial)
    window = list(enumerate(initial))
    tree = CoalescingTree(SumCombiner(), split_mode=split_mode)
    tree.initial_run([_leaf(t, v) for t, v in window])
    for i, added_values in enumerate(appends):
        if split_mode and i % 2 == 1:
            tree.background_preprocess()
        added = [(counter + j, v) for j, v in enumerate(added_values)]
        counter += len(added_values)
        window = window + added
        root = tree.advance([_leaf(t, v) for t, v in added], 0)
        assert root.entries == _expected(window).entries


@settings(max_examples=40, deadline=None)
@given(initial=initial_values, slide_seq=slides)
def test_folding_tree_with_max_combiner(initial, slide_seq):
    """A second combiner family: max is associative+commutative but not
    invertible — exactly the case where contraction trees shine over
    inverse-function approaches."""
    counter = len(initial)
    window = list(enumerate(initial))
    tree = FoldingTree(MaxCombiner())
    tree.initial_run([Partition({"m": v}) for _, v in window])
    for removed, added_values in slide_seq:
        removed = min(removed, len(window))
        added = [(counter + i, v) for i, v in enumerate(added_values)]
        counter += len(added_values)
        window = window[removed:] + added
        root = tree.advance([Partition({"m": v}) for _, v in added], removed)
        if window:
            assert root.get("m") == max(v for _, v in window)
        else:
            assert not root


@settings(max_examples=30, deadline=None)
@given(initial=initial_values, slide_seq=slides, seed=st.integers(0, 100))
def test_randomized_tree_height_reasonable(initial, slide_seq, seed):
    """Expected height stays within a small multiple of log2(window)."""
    import math

    counter = len(initial)
    window = list(enumerate(initial))
    tree = RandomizedFoldingTree(SumCombiner(), seed=seed)
    tree.initial_run([_leaf(t, v) for t, v in window])
    for removed, added_values in slide_seq:
        removed = min(removed, len(window))
        added = [(counter + i, v) for i, v in enumerate(added_values)]
        counter += len(added_values)
        window = window[removed:] + added
        tree.advance([_leaf(t, v) for t, v in added], removed)
        if len(window) >= 2:
            bound = 6 * (math.log2(len(window)) + 1) + 8
            assert tree.height <= bound

"""The plan compiler: fusion grouping, kernel bit-identity, legality.

The compile layer's contract has three parts, each tested here in
isolation from the slider front end:

* **fusion is shape-preserving** — FusedSteps group consecutive steps
  without rewriting them, so counts and signatures survive verbatim;
* **kernels are bit-identical** — a batched combine produces the same
  entries (values *and* types), dict order, and float cost as the scalar
  ``combine_partitions`` loop;
* **legality is algebraic** — only combiners whose declared
  associativity/commutativity passed the law gate may batch; an
  order-sensitive combiner is never fused even with a kernel registered.
"""

import math
import random

import pytest

from repro.apps.netsession import AuditCombiner
from repro.core.compile import (
    CompiledPlan,
    compile_plan,
    fused_combine_partitions,
    fusion_legal,
    kernel_for,
    register_kernel,
    registered_kernel_types,
    unregister_kernel,
)
from repro.core.compile.kernels import SumKernel, VectorSumKernel
from repro.core.partition import Partition, combine_partitions
from repro.core.plan import FUSED_KINDS, FusedStep, Plan, PlanStep
from repro.mapreduce.combiners import (
    CountCombiner,
    SumCombiner,
    VectorSumCombiner,
)
from repro.metrics import Phase, WorkMeter


def build_plan(ops):
    """A synthetic plan from (op, label, n_inputs, reducer) tuples."""
    plan = Plan(label="synthetic")
    for op, label, n_inputs, reducer in ops:
        plan.step(
            op,
            label=label,
            phase=Phase.MAP if op == "map" else Phase.CONTRACTION,
            n_inputs=n_inputs,
            reducer=reducer,
        )
    return plan


class TestFusionPass:
    def test_consecutive_combines_fuse_per_level(self):
        plan = build_plan(
            [
                ("combine", "fold:L0.0", 2, 0),
                ("combine", "fold:L0.1", 2, 0),
                ("combine", "fold:L0.2", 2, 0),
                ("combine", "fold:L1.0", 2, 0),
                ("combine", "fold:L1.1", 2, 0),
                ("reduce", "reduce:0", 1, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        kinds = [group.kind for group in compiled.fused]
        assert kinds == ["combine-run", "combine-run"]
        assert [group.count for group in compiled.fused] == [3, 2]
        assert [group.level for group in compiled.fused] == [0, 1]
        assert compiled.fused[0].n_inputs == 6

    def test_reducers_never_fuse_together(self):
        plan = build_plan(
            [
                ("combine", "fold:L0.0", 2, 0),
                ("combine", "fold:L0.1", 2, 1),
                ("combine", "fold:L0.2", 2, 1),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        assert [g.reducer for g in compiled.fused] == [1]
        assert [g.count for g in compiled.fused] == [2]

    def test_map_batch_absorbs_its_single_combine(self):
        plan = build_plan(
            [
                ("map", "map:s0", 1, None),
                ("map", "map:s1", 1, None),
                ("map", "map:s2", 1, None),
                ("combine", "coal:delta", 3, 0),
                ("reduce", "reduce:0", 1, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        assert [g.kind for g in compiled.fused] == ["map-combine"]
        group = compiled.fused[0]
        assert group.count == 4
        assert group.counts_by_op() == {"map": 3, "combine": 1}
        # The chain crosses the map → contraction boundary, so the
        # members' shared phase is undefined.
        assert group.phase is None

    def test_combine_not_absorbed_when_inputs_mismatch(self):
        plan = build_plan(
            [
                ("map", "map:s0", 1, None),
                ("map", "map:s1", 1, None),
                ("combine", "fold:L0.0", 5, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        assert [g.kind for g in compiled.fused] == ["map-batch"]
        assert compiled.fused[0].count == 2

    def test_singletons_never_fuse(self):
        plan = build_plan(
            [
                ("map", "map:s0", 1, None),
                ("combine", "fold:L0.0", 2, 0),
                ("reduce", "reduce:0", 1, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        # map feeds a 2-input combine: no chain, and neither run has 2+.
        assert compiled.fused == ()

    def test_visit_runs_fuse(self):
        plan = build_plan(
            [
                ("visit", "straw:L0.0", 1, 0),
                ("visit", "straw:L0.1", 1, 0),
                ("visit", "straw:L0.2", 1, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        assert [g.kind for g in compiled.fused] == ["visit-run"]
        # Visits are positional reuse walks, not combiner merges: no
        # kernel dispatch even for a legal combiner.
        assert compiled.batched_step_count() == 0

    def test_fusion_preserves_plan_artifacts(self):
        plan = build_plan(
            [
                ("map", "map:s0", 1, None),
                ("map", "map:s1", 1, None),
                ("combine", "fold:L0.0", 2, 0),
                ("combine", "fold:L0.1", 2, 0),
                ("reduce", "reduce:0", 1, 0),
            ]
        )
        fused = compile_plan(plan, SumCombiner(), fusion=True)
        unfused = compile_plan(plan, SumCombiner(), fusion=False)
        assert fused.plan is plan and unfused.plan is plan
        assert fused.ops == unfused.ops
        assert fused.shape() == plan.shape()
        assert fused.structural_signature() == plan.structural_signature()
        assert unfused.fused == () and unfused.batched_step_count() == 0

    def test_fused_step_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            FusedStep(kind="mystery", start=0, count=2)
        for kind in FUSED_KINDS:
            FusedStep(kind=kind, start=0, count=2)


class TestKernelHints:
    def test_legal_combiner_hints_combines_only(self):
        plan = build_plan(
            [
                ("map", "map:s0", 1, None),
                ("map", "map:s1", 1, None),
                ("combine", "fold:L0.0", 2, 0),
                ("combine", "fold:L0.1", 2, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        assert compiled.fusion_legal
        assert compiled.kernel_hints == (False, False, True, True)
        assert compiled.batched_step_count() == 2

    def test_no_combiner_means_no_hints(self):
        plan = build_plan(
            [
                ("combine", "fold:L0.0", 2, 0),
                ("combine", "fold:L0.1", 2, 0),
            ]
        )
        compiled = compile_plan(plan)
        assert not compiled.fusion_legal
        assert compiled.fused != ()  # grouping still recorded
        assert compiled.batched_step_count() == 0

    def test_fusion_flag_disables_grouping(self):
        plan = build_plan([("combine", "fold:L0.0", 2, 0)] * 3)
        compiled = compile_plan(plan, SumCombiner(), fusion=False)
        assert compiled.fused == ()
        assert compiled.kernel_hints == (False, False, False)


class TestFusionLegality:
    def test_numeric_combiners_are_legal(self):
        assert fusion_legal(SumCombiner())
        assert fusion_legal(CountCombiner())
        assert fusion_legal(VectorSumCombiner())

    def test_kernels_bind_to_exact_types(self):
        class TweakedSum(SumCombiner):
            def merge(self, key, values):
                return sum(values) + 1

        assert kernel_for(TweakedSum()) is None
        assert not fusion_legal(TweakedSum())

    def test_audit_combiner_is_never_fused(self):
        """The order-sensitive NetSession combiner: not commutative, so
        not legal — even if someone registers a kernel for it."""
        audit = AuditCombiner()
        assert not audit.commutative
        assert not fusion_legal(audit)
        register_kernel(AuditCombiner, SumKernel())
        try:
            assert kernel_for(audit) is not None
            assert not fusion_legal(audit), (
                "legality must require the declared algebra, not just a "
                "registered kernel"
            )
            plan = build_plan(
                [
                    ("combine", "fold:L0.0", 2, 0),
                    ("combine", "fold:L0.1", 2, 0),
                ]
            )
            compiled = compile_plan(plan, audit)
            assert compiled.batched_step_count() == 0
        finally:
            unregister_kernel(AuditCombiner)
        assert AuditCombiner not in registered_kernel_types()

    def test_registered_types_feed_the_law_gate(self):
        from repro.analysis.targets import kernel_targets

        names = {t.name for t in kernel_targets()}
        assert {
            "kernel:SumCombiner",
            "kernel:CountCombiner",
            "kernel:VectorSumCombiner",
        } <= names


def scalar_vs_kernel(partitions, combiner, kernel):
    scalar_meter, kernel_meter = WorkMeter(), WorkMeter()
    scalar = combine_partitions(
        partitions,
        combiner,
        meter=scalar_meter,
        cost_factor=1.5,
        invocation_overhead=2.0,
    )
    batched = fused_combine_partitions(
        partitions,
        combiner,
        kernel,
        meter=kernel_meter,
        cost_factor=1.5,
        invocation_overhead=2.0,
    )
    return scalar, batched, scalar_meter, kernel_meter


def assert_bit_identical(scalar, batched, scalar_meter, kernel_meter):
    assert list(batched.entries) == list(scalar.entries)  # dict order
    for key, value in scalar.entries.items():
        got = batched.entries[key]
        assert got == value, key
        assert type(got) is type(value), key
        if isinstance(value, float):
            assert math.copysign(1.0, got) == math.copysign(1.0, value)
    assert kernel_meter.total() == scalar_meter.total()  # exact, not approx


class TestSumKernelBitIdentity:
    def test_int_values(self):
        rng = random.Random(7)
        partitions = [
            Partition(
                {f"k{j}": rng.randrange(-(10**9), 10**9) for j in range(40)}
            )
            for _ in range(9)
        ]
        assert_bit_identical(
            *scalar_vs_kernel(partitions, SumCombiner(), SumKernel())
        )

    def test_int_results_stay_ints(self):
        partitions = [Partition({"a": 2}), Partition({"a": 3})]
        _, batched, *_ = scalar_vs_kernel(
            partitions, SumCombiner(), SumKernel()
        )
        assert type(batched.entries["a"]) is int

    def test_float_values_match_left_fold(self):
        rng = random.Random(11)
        partitions = [
            Partition(
                {f"k{j}": rng.uniform(-1e9, 1e9) for j in range(25)}
            )
            for _ in range(7)
        ]
        # Python's sum() folds left-to-right; pairwise numpy sums round
        # differently, so exact equality here is the kernel's whole point.
        assert_bit_identical(
            *scalar_vs_kernel(partitions, SumCombiner(), SumKernel())
        )

    def test_negative_zero_preserved(self):
        partitions = [Partition({"a": -0.0}), Partition({"a": -0.0})]
        scalar, batched, *_ = scalar_vs_kernel(
            partitions, SumCombiner(), SumKernel()
        )
        # sum([-0.0, -0.0]) starts from int 0, so 0 + -0.0 == 0.0.
        assert math.copysign(1.0, scalar.entries["a"]) == 1.0
        assert math.copysign(1.0, batched.entries["a"]) == 1.0

    def test_mixed_and_huge_values_fall_back_per_key(self):
        partitions = [
            Partition({"mixed": 1, "huge": 2**50, "ok": 3, "b": True}),
            Partition({"mixed": 2.5, "huge": 2**50, "ok": 4, "b": True}),
        ]
        assert_bit_identical(
            *scalar_vs_kernel(partitions, SumCombiner(), SumKernel())
        )

    def test_singletons_copy_through(self):
        partitions = [
            Partition({"both": 1, "left": 5}),
            Partition({"both": 2, "right": 7.5}),
        ]
        assert_bit_identical(
            *scalar_vs_kernel(partitions, SumCombiner(), SumKernel())
        )

    def test_ragged_value_counts(self):
        partitions = [
            Partition({"a": 1.5, "b": 2.5, "c": 1}),
            Partition({"a": 3.5, "b": 4.5}),
            Partition({"a": 5.5}),
        ]
        assert_bit_identical(
            *scalar_vs_kernel(partitions, SumCombiner(), SumKernel())
        )

    def test_empty_and_single_partitions(self):
        empty = fused_combine_partitions([], SumCombiner(), SumKernel())
        assert empty.entries == {}
        only = Partition({"a": 1})
        assert (
            fused_combine_partitions(
                [only, Partition({})], SumCombiner(), SumKernel()
            )
            is only
        )


class TestVectorSumKernelBitIdentity:
    def make_partitions(self, seed, n_parts=6, n_keys=10, dim=4):
        rng = random.Random(seed)
        return [
            Partition(
                {
                    f"c{j}": (
                        rng.randrange(1, 50),
                        tuple(rng.uniform(-100, 100) for _ in range(dim)),
                    )
                    for j in range(n_keys)
                }
            )
            for _ in range(n_parts)
        ]

    def test_centroid_accumulation(self):
        partitions = self.make_partitions(3)
        assert_bit_identical(
            *scalar_vs_kernel(
                partitions, VectorSumCombiner(), VectorSumKernel()
            )
        )

    def test_non_vectorizable_values_fall_back(self):
        partitions = [
            Partition({"odd": (1, (1.0, 2)), "ok": (1, (1.0, 2.0))}),
            Partition({"odd": (1, (1.0, 3)), "ok": (2, (3.0, 4.0))}),
        ]
        assert_bit_identical(
            *scalar_vs_kernel(
                partitions, VectorSumCombiner(), VectorSumKernel()
            )
        )

    def test_results_are_count_and_tuple(self):
        partitions = self.make_partitions(5, n_parts=3, n_keys=2, dim=2)
        _, batched, *_ = scalar_vs_kernel(
            partitions, VectorSumCombiner(), VectorSumKernel()
        )
        for count, vec in batched.entries.values():
            assert type(count) is int
            assert type(vec) is tuple
            assert all(type(x) is float for x in vec)


class TestPlanCachedViews:
    def test_signature_cached_and_invalidated(self):
        plan = Plan(label="t")
        plan.step("map", label="map:s0", phase=Phase.MAP, n_inputs=1)
        first = plan.signature()
        assert plan.signature() is first  # cached object, not recomputed
        counts = plan.counts_by_op()
        counts["map"] = 99  # the returned dict is a copy
        assert plan.counts_by_op() == {"map": 1}
        plan.step("reduce", label="reduce:0", n_inputs=1, reducer=0)
        assert plan.signature() is not first
        assert plan.counts_by_op() == {"map": 1, "reduce": 1}

    def test_structural_signature_masks_content_ids(self):
        a, b = Plan(), Plan()
        a.step("map", label="map:s@0xdeadbeef", memo_uid=101, n_inputs=1)
        b.step("map", label="map:s@0xcafebabe", memo_uid=202, n_inputs=1)
        assert a.signature() != b.signature()
        assert a.structural_signature() == b.structural_signature()

    def test_structural_signature_sees_real_differences(self):
        a, b = Plan(), Plan()
        a.step("map", label="map:s@0xdeadbeef", n_inputs=1)
        b.step("map", label="map:s@0xdeadbeef", n_inputs=2)
        assert a.structural_signature() != b.structural_signature()

    def test_step_signature_shapes(self):
        step = PlanStep(
            uid=0, op="combine", label="fold:L2.1@0xabc123", n_inputs=2
        )
        assert step.level == 2
        structural = step.structural_signature()
        assert "0x*" in structural[2]
        assert structural[5] is False  # memo presence, not the uid


class TestCompiledPlanViews:
    def test_len_and_counts(self):
        plan = build_plan(
            [
                ("map", "map:s0", 1, None),
                ("map", "map:s1", 1, None),
                ("combine", "fold:L0.0", 2, 0),
            ]
        )
        compiled = compile_plan(plan, SumCombiner())
        assert len(compiled) == 3
        assert isinstance(compiled, CompiledPlan)
        assert compiled.fused_counts() == {"map-combine": 1}

"""Unit tests for the Partition algebra."""

import pytest

from repro.core.partition import Partition, combine_partitions
from repro.mapreduce.combiners import (
    KSmallestCombiner,
    SetUnionCombiner,
    SumCombiner,
)
from repro.metrics import Phase, WorkMeter


def test_empty_partition_is_falsy():
    assert not Partition.empty()
    assert len(Partition.empty()) == 0


def test_partition_uid_is_content_based():
    a = Partition({"x": 1, "y": 2})
    b = Partition({"y": 2, "x": 1})
    assert a.uid == b.uid
    assert a == b


def test_partition_uid_differs_for_different_content():
    assert Partition({"x": 1}).uid != Partition({"x": 2}).uid
    assert Partition({"x": 1}).uid != Partition({"y": 1}).uid


def test_combine_sums_per_key():
    combiner = SumCombiner()
    a = Partition({"x": 1, "y": 2})
    b = Partition({"x": 10, "z": 5})
    out = combine_partitions([a, b], combiner)
    assert out.entries == {"x": 11, "y": 2, "z": 5}


def test_combine_is_associative_over_three_parts():
    combiner = SumCombiner()
    parts = [Partition({"k": v}) for v in (1, 2, 3)]
    left = combine_partitions(
        [combine_partitions(parts[:2], combiner), parts[2]], combiner
    )
    right = combine_partitions(
        [parts[0], combine_partitions(parts[1:], combiner)], combiner
    )
    assert left.entries == right.entries


def test_combine_skips_empty_partitions():
    combiner = SumCombiner()
    a = Partition({"x": 1})
    out = combine_partitions([Partition.empty(), a, Partition.empty()], combiner)
    assert out is a


def test_combine_of_nothing_is_empty():
    assert not combine_partitions([], SumCombiner())


def test_combine_charges_meter():
    meter = WorkMeter()
    a = Partition({"x": 1, "y": 1})
    b = Partition({"x": 1})
    combine_partitions([a, b], SumCombiner(), meter=meter)
    assert meter.by_phase[Phase.CONTRACTION] > 0


def test_combine_cost_factor_scales_work():
    a = Partition({"x": 1})
    b = Partition({"x": 2})
    plain, scaled = WorkMeter(), WorkMeter()
    combine_partitions([a, b], SumCombiner(), meter=plain)
    combine_partitions([a, b], SumCombiner(), meter=scaled, cost_factor=3.0)
    assert scaled.total() == pytest.approx(3.0 * plain.total())


def test_from_value_lists_applies_combiner():
    combiner = SumCombiner()
    part = Partition.from_value_lists({"a": [1, 2, 3], "b": [4]}, combiner)
    assert part.entries == {"a": 6, "b": 4}


def test_set_union_partition_uid_stable_under_set_order():
    combiner = SetUnionCombiner()
    a = Partition({"k": frozenset({"u1", "u2"})})
    b = Partition({"k": frozenset({"u2", "u1"})})
    assert a.uid == b.uid
    merged = combine_partitions([a, Partition({"k": frozenset({"u3"})})], combiner)
    assert merged.get("k") == frozenset({"u1", "u2", "u3"})


def test_ksmallest_combine_keeps_k():
    combiner = KSmallestCombiner(k=2)
    a = Partition({"q": ((1.0, "a"), (5.0, "b"))})
    b = Partition({"q": ((0.5, "c"), (9.0, "d"))})
    out = combine_partitions([a, b], combiner)
    assert out.get("q") == ((0.5, "c"), (1.0, "a"))


def test_record_weight_uses_value_size():
    combiner = KSmallestCombiner(k=3)
    part = Partition({"q": ((1.0, "a"), (2.0, "b"))})
    assert part.record_weight(combiner) == 2.0

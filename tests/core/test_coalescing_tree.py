"""Unit tests for the coalescing contraction tree (§4.2)."""

import pytest

from repro.common.errors import WindowError
from repro.core.coalescing import CoalescingTree
from repro.mapreduce.combiners import SumCombiner
from repro.metrics import Phase

from tests.conftest import leaf_seq, root_total


def make_tree(**kwargs) -> CoalescingTree:
    return CoalescingTree(SumCombiner(), **kwargs)


def test_initial_run():
    tree = make_tree()
    assert root_total(tree.initial_run(leaf_seq([1, 2, 3]))) == 6


def test_appends_accumulate():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2]))
    assert root_total(tree.advance(leaf_seq([3]), 0)) == 6
    assert root_total(tree.advance(leaf_seq([4, 5]), 0)) == 15


def test_remove_rejected():
    tree = make_tree()
    tree.initial_run(leaf_seq([1]))
    with pytest.raises(WindowError):
        tree.advance(leaf_seq([2]), removed=1)


def test_empty_append_is_noop():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2]))
    assert root_total(tree.advance([], 0)) == 3


def test_append_cost_independent_of_history_size():
    tree = make_tree()
    tree.initial_run(leaf_seq(list(range(512))))
    before = tree.stats.combiner_invocations
    tree.advance(leaf_seq([1]), 0)
    assert tree.stats.combiner_invocations - before <= 2


def test_split_mode_defers_root_combine_to_background():
    tree = make_tree(split_mode=True)
    tree.initial_run(leaf_seq([1, 2, 3]))
    root = tree.advance(leaf_seq([10]), 0)
    assert root_total(root) == 16
    assert tree.meter.by_phase.get(Phase.BACKGROUND, 0.0) == 0.0
    tree.background_preprocess()
    assert tree.meter.by_phase.get(Phase.BACKGROUND, 0.0) > 0


def test_split_mode_correct_without_background():
    tree = make_tree(split_mode=True)
    tree.initial_run(leaf_seq([1]))
    total = 1
    for step in range(8):
        if step % 3 == 0:
            tree.background_preprocess()
        value = step + 2
        total += value
        from repro.core.partition import Partition

        leaf = Partition({"total": value, ("leaf", 4000 + step): 1})
        root = tree.advance([leaf], 0)
        assert root_total(root) == total


def test_split_mode_matches_reference():
    tree = make_tree(split_mode=True)
    tree.initial_run(leaf_seq([5, 6]))
    tree.background_preprocess()
    root = tree.advance(leaf_seq([7]), 0)
    assert root.entries == tree.reference_root().entries

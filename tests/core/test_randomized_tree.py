"""Unit tests for the randomized folding tree (§3.2)."""

import pytest

from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.mapreduce.combiners import SumCombiner

from tests.conftest import leaf_seq, root_total


def make_tree(**kwargs) -> RandomizedFoldingTree:
    return RandomizedFoldingTree(SumCombiner(), **kwargs)


def test_initial_run_root():
    tree = make_tree()
    root = tree.initial_run(leaf_seq(list(range(10))))
    assert root_total(root) == sum(range(10))


def test_empty_and_single():
    assert not make_tree().initial_run([])
    tree = make_tree()
    assert root_total(tree.initial_run(leaf_seq([42]))) == 42


def test_advance_matches_reference():
    tree = make_tree()
    values = list(range(20))
    tree.initial_run(leaf_seq(values))
    root = tree.advance(leaf_seq([100, 101]), removed=5)
    expected = sum(values[5:]) + 201
    assert root_total(root) == expected
    assert root.entries == tree.reference_root().entries


def test_shape_is_deterministic_for_seed():
    a, b = make_tree(seed=7), make_tree(seed=7)
    leaves = leaf_seq(list(range(50)))
    a.initial_run(leaves)
    b.initial_run(leaves)
    assert a.height == b.height
    assert a.root().uid == b.root().uid


def test_height_tracks_current_window_size():
    """Shrinking the window drastically shrinks the expected height —
    the property the plain folding tree lacks (Figure 12)."""
    tree = make_tree(seed=3)
    tree.initial_run(leaf_seq(list(range(256))))
    tall = tree.height
    tree.advance([], removed=250)  # window of 6 leaves left
    assert tree.height < tall
    assert tree.height <= 8


def test_incremental_update_reuses_interior_groups():
    tree = make_tree(seed=5)
    tree.initial_run(leaf_seq(list(range(128))))
    before = tree.stats.combiner_invocations
    tree.advance(leaf_seq([999]), removed=1)
    recomputed = tree.stats.combiner_invocations - before
    # Only edge groups and their ancestors: way below the ~127 group count.
    assert recomputed < 40
    assert tree.stats.combiner_reuses > 0


def test_auto_gc_bounds_memo_size():
    tree = make_tree(auto_gc=True)
    tree.initial_run(leaf_seq(list(range(64))))
    for i in range(10):
        tree.advance(leaf_seq([1000 + i]), removed=1)
    # Memo holds at most the live structure, not ten generations of it.
    assert len(tree.memo) <= 4 * 64


def test_remove_too_many_rejected():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2]))
    with pytest.raises(ValueError):
        tree.advance([], removed=3)


def test_duplicate_leaf_content_supported():
    tree = make_tree()
    dup = Partition({"total": 5})
    root = tree.initial_run([dup, dup, dup])
    assert root_total(root) == 15

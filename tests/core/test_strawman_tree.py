"""Unit tests for the strawman memoization tree (§2)."""

import pytest

from repro.core.strawman import StrawmanTree
from repro.mapreduce.combiners import SumCombiner

from tests.conftest import leaf_seq, root_total


def make_tree(**kwargs) -> StrawmanTree:
    return StrawmanTree(SumCombiner(), **kwargs)


def test_initial_run_root():
    tree = make_tree()
    root = tree.initial_run(leaf_seq([1, 2, 3, 4, 5]))
    assert root_total(root) == 15


def test_empty_initial_run():
    tree = make_tree()
    assert not tree.initial_run([])


def test_advance_appends_and_removes():
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2, 3]))
    root = tree.advance(leaf_seq([10, 20]), removed=1)
    assert root_total(root) == 2 + 3 + 10 + 20
    assert root.entries == tree.reference_root().entries


def test_remove_too_many_rejected():
    tree = make_tree()
    tree.initial_run(leaf_seq([1]))
    with pytest.raises(ValueError):
        tree.advance([], removed=2)


def test_identical_rerun_reuses_everything():
    """With no input change, every internal node is a memo hit."""
    tree = make_tree()
    tree.initial_run(leaf_seq([1, 2, 3, 4]))
    invocations = tree.stats.combiner_invocations
    tree.advance([], removed=0)
    assert tree.stats.combiner_invocations == invocations
    assert tree.stats.combiner_reuses >= 3


def test_front_drop_recomputes_most_internal_nodes():
    """A slide realigns pairing, defeating memoization (the §2 limitation)."""
    n = 64
    tree = make_tree()
    tree.initial_run(leaf_seq(list(range(n))))
    invocations_before = tree.stats.combiner_invocations
    tree.advance(leaf_seq([1000]), removed=1)
    recomputed = tree.stats.combiner_invocations - invocations_before
    # Nearly all of the ~n internal nodes are recomputed, not O(log n).
    assert recomputed > n / 2


def test_append_only_is_cheap_for_strawman():
    """Without front drops the pairing is stable: appends reuse the left side."""
    n = 64
    tree = make_tree()
    tree.initial_run(leaf_seq(list(range(n))))
    invocations_before = tree.stats.combiner_invocations
    tree.advance(leaf_seq([1000, 1001]), removed=0)
    recomputed = tree.stats.combiner_invocations - invocations_before
    assert recomputed <= 10  # right-spine only

"""The execution-backend seam: dispatch ladder, fallback, certification tie."""

import pytest

from repro.core.backends import (
    CERTIFIED_PARALLEL_VARIANTS,
    EXECUTION_BACKENDS,
    InProcessBackend,
    ProcessBackend,
    make_backend,
)
from repro.core.memo import DictMemoStore
from repro.core.poison import PoisonPolicy
from repro.core.sharedmem import SharedNamespace
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def _job(num_reducers=2):
    return MapReduceJob(
        name="backend-test",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=num_reducers,
    )


def _split(i):
    return Split.from_records([f"w{(i + j) % 9}" for j in range(12)], label=f"s{i}")


def _slider(**config_kw):
    config_kw.setdefault("mode", WindowMode.VARIABLE)
    config_kw.setdefault("execution_backend", "process")
    config_kw.setdefault("workers", 2)
    return Slider(
        _job(), config_kw["mode"], config=SliderConfig(**config_kw)
    )


def _warm(slider, advances=12):
    """Initial run plus enough steady advances to replay compiled plans."""
    slider.initial_run([_split(i) for i in range(6)])
    for i in range(advances):
        slider.advance([_split(20 + i)], 1)
    return slider


class TestMakeBackend:
    def test_names(self):
        assert isinstance(make_backend("inprocess", 4), InProcessBackend)
        backend = make_backend("process", 4)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 4
        backend.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("threads", 2)
        assert set(EXECUTION_BACKENDS) == {"inprocess", "process"}

    def test_config_validates_backend_and_workers(self):
        with pytest.raises(ValueError):
            SliderConfig(execution_backend="gpu")
        with pytest.raises(ValueError):
            SliderConfig(execution_backend="process", workers=0)


class TestCertificationTie:
    def test_frozen_allowlist_matches_analysis_layer(self):
        from repro.analysis.shared import CERTIFIED_VARIANTS

        assert CERTIFIED_PARALLEL_VARIANTS == frozenset(CERTIFIED_VARIANTS)

    def test_every_allowlisted_variant_still_certifies_green(self):
        from repro.analysis.shared import certify_all

        certificates = certify_all(advances=2)
        verdicts = {
            (c.variant, c.mode): c.verdict for c in certificates
        }
        for pair in CERTIFIED_PARALLEL_VARIANTS:
            assert verdicts[pair] == "parallel-safe", pair


class TestDispatchLadder:
    def test_dispatches_on_certified_replayed_runs(self):
        slider = _warm(_slider())
        try:
            counters = slider.telemetry.counters
            assert counters.get("backend.dispatched_reducers", 0) > 0
            assert counters.get("backend.dispatch_runs", 0) > 0
        finally:
            slider.close()

    def test_fresh_plans_stay_inprocess(self):
        # Cache off -> no replay template -> every run falls back.
        slider = _warm(_slider(plan_cache=False), advances=4)
        try:
            counters = slider.telemetry.counters
            assert counters.get("backend.dispatched_reducers", 0) == 0
            assert counters.get("backend.inprocess_runs", 0) > 0
        finally:
            slider.close()

    def test_poison_policy_stays_inprocess(self):
        slider = _warm(
            _slider(poison_policy=PoisonPolicy(max_retries=1)), advances=4
        )
        try:
            assert (
                slider.telemetry.counters.get("backend.dispatched_reducers", 0)
                == 0
            )
        finally:
            slider.close()

    def test_uncertified_variant_stays_inprocess(self):
        # rotating/variable holds no certificate (only rotating/fixed does).
        assert ("rotating", "variable") not in CERTIFIED_PARALLEL_VARIANTS
        slider = _warm(_slider(tree="rotating"), advances=4)
        try:
            assert (
                slider.telemetry.counters.get("backend.dispatched_reducers", 0)
                == 0
            )
        finally:
            slider.close()

    def test_cluster_runs_stay_inprocess_with_local_stores(self):
        from repro.cluster.machine import Cluster, ClusterConfig

        slider = Slider(
            _job(),
            WindowMode.VARIABLE,
            config=SliderConfig(
                mode=WindowMode.VARIABLE,
                execution_backend="process",
                workers=2,
            ),
            cluster=Cluster(ClusterConfig(num_machines=4)),
        )
        try:
            # The gate decides at tree construction: cluster trees get
            # process-local dict stores, not shared namespaces.
            for tree in slider.trees:
                assert isinstance(tree.memo.entries, DictMemoStore)
            _warm(slider, advances=4)
            assert (
                slider.telemetry.counters.get("backend.dispatched_reducers", 0)
                == 0
            )
        finally:
            slider.close()

    def test_clusterless_trees_run_over_shared_namespaces(self):
        slider = _slider()
        try:
            for tree in slider.trees:
                assert isinstance(tree.memo.entries, SharedNamespace)
        finally:
            slider.close()

    def test_broken_pool_degrades_to_inprocess_forever(self):
        slider = _warm(_slider(), advances=4)
        try:
            backend = slider.backend
            assert isinstance(backend, ProcessBackend)
            before = dict(slider.telemetry.counters)
            backend.broken = True  # as a worker failure would set it
            r = slider.advance([_split(90)], 1)
            assert r.outputs  # still correct
            after = slider.telemetry.counters
            assert after.get("backend.dispatched_reducers", 0) == before.get(
                "backend.dispatched_reducers", 0
            )
            assert after.get("backend.inprocess_runs", 0) > before.get(
                "backend.inprocess_runs", 0
            )
        finally:
            slider.close()

    def test_worker_death_falls_back_with_correct_outputs(self):
        inproc = _warm(_slider(execution_backend="inprocess"), advances=10)
        proc = _warm(_slider(), advances=10)
        try:
            backend = proc.backend
            assert backend._pool is not None
            # Kill the pool's processes out from under the backend.
            for worker_proc in backend._pool.procs:
                worker_proc.terminate()
                worker_proc.join()
            a = proc.advance([_split(30)], 1)
            b = inproc.advance([_split(30)], 1)
            assert a.outputs == b.outputs
            assert proc.telemetry.counters.get(
                "backend.worker_fallbacks", 0
            ) + proc.telemetry.counters.get("backend.inprocess_runs", 0) > 0
            assert backend.broken
            # Later advances keep working, permanently local.
            c = proc.advance([_split(31)], 1)
            d = inproc.advance([_split(31)], 1)
            assert c.outputs == d.outputs
        finally:
            proc.close()
            inproc.close()


class TestUnpicklableFallback:
    def test_unpicklable_payload_falls_back_per_reducer(self):
        lock_holder = []

        def map_fn(record):
            return [(record, 1)]

        slider = Slider(
            _job(),
            WindowMode.VARIABLE,
            config=SliderConfig(
                mode=WindowMode.VARIABLE,
                execution_backend="process",
                workers=2,
            ),
        )
        try:
            _warm(slider, advances=10)
            assert (
                slider.telemetry.counters.get("backend.dispatched_reducers", 0)
                > 0
            )
            # Poison one tree's state with an unpicklable object; its
            # reducer must fall back while the rest still dispatch.
            import threading

            slider.trees[0]._unpicklable_probe = threading.Lock()
            before = dict(slider.telemetry.counters)
            result = slider.advance([_split(60)], 1)
            after = slider.telemetry.counters
            assert result.outputs
            assert after.get("backend.unpicklable_fallbacks", 0) > before.get(
                "backend.unpicklable_fallbacks", 0
            )
            del slider.trees[0].__dict__["_unpicklable_probe"]
        finally:
            slider.close()

"""Unit tests for work metering and run reports."""

import pytest

from repro.metrics import Phase, RunReport, Speedup, WorkMeter


def test_charge_accumulates_per_phase():
    meter = WorkMeter()
    meter.charge(Phase.MAP, 3.0)
    meter.charge(Phase.MAP, 2.0)
    meter.charge(Phase.REDUCE, 1.0)
    assert meter.by_phase[Phase.MAP] == 5.0
    assert meter.total() == 6.0
    assert meter.phase_total(Phase.MAP, Phase.REDUCE) == 6.0


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        WorkMeter().charge(Phase.MAP, -1.0)


def test_foreground_excludes_background():
    meter = WorkMeter()
    meter.charge(Phase.MAP, 4.0)
    meter.charge(Phase.BACKGROUND, 10.0)
    assert meter.foreground_total() == 4.0
    assert meter.total() == 14.0


def test_merge_folds_counters():
    a, b = WorkMeter(), WorkMeter()
    a.charge(Phase.MAP, 1.0)
    b.charge(Phase.MAP, 2.0)
    b.charge(Phase.SHUFFLE, 3.0)
    a.merge(b)
    assert a.by_phase[Phase.MAP] == 3.0
    assert a.by_phase[Phase.SHUFFLE] == 3.0


def test_snapshot_and_reset():
    meter = WorkMeter()
    meter.charge(Phase.CONTRACTION, 2.5)
    assert meter.snapshot() == {"contraction": 2.5}
    meter.reset()
    assert meter.total() == 0.0
    assert meter.task_costs == []


def test_task_costs_recorded_when_tracking_enabled():
    meter = WorkMeter(track_tasks=True)
    meter.charge(Phase.MAP, 1.0)
    meter.charge(Phase.REDUCE, 2.0)
    assert meter.task_costs == [(Phase.MAP, 1.0), (Phase.REDUCE, 2.0)]


def test_task_tracking_keyword_deprecated():
    with pytest.deprecated_call():
        meter = WorkMeter(_task_tracking=True)
    meter.charge(Phase.MAP, 1.0)
    assert meter.task_costs == [(Phase.MAP, 1.0)]
    # The private name survives as a read-only compatibility property.
    assert meter._task_tracking is True


def test_task_costs_off_by_default():
    meter = WorkMeter()
    meter.charge(Phase.MAP, 1.0)
    meter.charge(Phase.REDUCE, 2.0)
    assert meter.task_costs == []
    assert meter.total() == 3.0


def test_speedup_over():
    fast = RunReport(label="fast", work=10.0, time=5.0)
    slow = RunReport(label="slow", work=100.0, time=20.0)
    speedup = fast.speedup_over(slow)
    assert speedup == Speedup(work=10.0, time=4.0)


def test_speedup_over_zero_denominator():
    zero = RunReport(label="zero", work=0.0, time=0.0)
    some = RunReport(label="some", work=5.0, time=5.0)
    speedup = zero.speedup_over(some)
    assert speedup.work == float("inf")

"""Unit tests for the synthetic data generators."""

import pytest

from repro.datagen.glasnost import (
    TABLE3_MONTHLY_RUNS,
    GlasnostTraceGenerator,
)
from repro.datagen.netsession import ClientLogGenerator
from repro.datagen.points import PointGenerator
from repro.datagen.text import TextCorpusGenerator
from repro.datagen.twitter import TweetGenerator, TwitterGraph


# -- text ---------------------------------------------------------------------


def test_text_lines_are_deterministic():
    a = TextCorpusGenerator(seed=4).lines(5)
    b = TextCorpusGenerator(seed=4).lines(5)
    assert a == b
    assert TextCorpusGenerator(seed=5).lines(5) != a


def test_text_words_follow_zipf_skew():
    generator = TextCorpusGenerator(seed=1, vocabulary_size=500)
    words = " ".join(generator.lines(300)).split()
    counts = {}
    for word in words:
        counts[word] = counts.get(word, 0) + 1
    top = max(counts.values())
    assert top > len(words) / 20  # a heavy head exists
    assert len(counts) > 50  # and a long tail


def test_text_word_spelling_varies():
    generator = TextCorpusGenerator(seed=1)
    words = {generator.word(rank) for rank in range(100)}
    first_letters = {w[0] for w in words}
    lengths = {len(w) for w in words}
    assert len(first_letters) > 5
    assert len(lengths) > 1


def test_text_validation():
    with pytest.raises(ValueError):
        TextCorpusGenerator(vocabulary_size=0)
    with pytest.raises(ValueError):
        TextCorpusGenerator(zipf_exponent=1.0)


# -- points ---------------------------------------------------------------------


def test_points_live_in_unit_cube():
    generator = PointGenerator(seed=2, dimensions=10, clusters=3)
    for point in generator.points(50):
        assert len(point) == 10
        assert all(0.0 <= x <= 1.0 for x in point)


def test_clustered_points_concentrate_near_centers():
    generator = PointGenerator(seed=2, dimensions=5, clusters=2, cluster_spread=0.01)
    centers = generator.centers
    for point in generator.points(20):
        nearest = min(
            sum((a - b) ** 2 for a, b in zip(point, c)) for c in centers
        )
        assert nearest < 0.05


def test_points_validation():
    with pytest.raises(ValueError):
        PointGenerator(dimensions=0)


# -- twitter ----------------------------------------------------------------------


def test_graph_is_deterministic_and_heavy_tailed():
    a = TwitterGraph(50, seed=3)
    b = TwitterGraph(50, seed=3)
    assert a.followees == b.followees
    degrees = {}
    for followees in a.followees.values():
        for f in followees:
            degrees[f] = degrees.get(f, 0) + 1
    assert max(degrees.values()) >= 3  # preferential attachment hubs


def test_graph_validation():
    with pytest.raises(ValueError):
        TwitterGraph(1)


def test_retweets_follow_edges():
    graph = TwitterGraph(60, seed=7)
    generator = TweetGenerator(graph, num_urls=10, seed=7)
    tweets = generator.tweets(300)
    retweets = [t for t in tweets if t.source_user >= 0]
    assert retweets, "cascades should form"
    for tweet in retweets:
        assert tweet.source_user in graph.followees.get(tweet.user, [])


def test_tweet_timestamps_increase():
    graph = TwitterGraph(20, seed=1)
    tweets = TweetGenerator(graph, seed=1).tweets(50)
    stamps = [t.timestamp for t in tweets]
    assert stamps == sorted(stamps)


# -- glasnost ----------------------------------------------------------------------


def test_glasnost_runs_have_positive_rtts():
    generator = GlasnostTraceGenerator(seed=5, packets_per_run=10)
    runs = generator.month_of_runs(0, 20)
    assert len(runs) == 20
    for run in runs:
        assert len(run.rtts_ms) == 10
        assert run.min_rtt() > 0
        assert run.month == 0


def test_glasnost_table3_months_match_paper_windows():
    # The derived monthly volumes must reproduce Table 3's window totals.
    windows = [sum(TABLE3_MONTHLY_RUNS[k : k + 3]) for k in range(9)]
    assert windows == [4033, 4862, 5627, 5358, 4715, 4325, 4384, 4777, 6536]


def test_glasnost_hosts_are_unique():
    generator = GlasnostTraceGenerator(seed=5)
    runs = generator.month_of_runs(0, 10) + generator.month_of_runs(1, 10)
    hosts = [run.host for run in runs]
    assert len(set(hosts)) == len(hosts)


# -- netsession -------------------------------------------------------------------


def test_netsession_chains_continue_across_weeks():
    generator = ClientLogGenerator(num_clients=3, entries_per_client=2, seed=9)
    week0 = generator.week_of_logs(0)
    week1 = generator.week_of_logs(1)
    last_auth = {r.client: r.authenticator for r in week0 if r.sequence == 1}
    first_prev = {r.client: r.prev_authenticator for r in week1 if r.sequence == 0}
    assert first_prev == last_auth


def test_netsession_online_fraction_shrinks_output():
    generator = ClientLogGenerator(num_clients=200, entries_per_client=1, seed=9)
    full = generator.week_of_logs(0, online_fraction=1.0)
    partial = generator.week_of_logs(1, online_fraction=0.5)
    assert len(full) == 200
    assert 50 < len(partial) < 150


def test_netsession_validation():
    with pytest.raises(ValueError):
        ClientLogGenerator(num_clients=0)
    generator = ClientLogGenerator(num_clients=2)
    with pytest.raises(ValueError):
        generator.week_of_logs(0, online_fraction=1.5)

"""Unit tests for the Pig-Latin parser."""

import pytest

from repro.mapreduce.types import make_splits
from repro.query.compiler import compile_plan
from repro.query.parser import PigParseError, parse_pig
from repro.query.pipeline import BatchQueryRunner, IncrementalQueryPipeline
from repro.slider.window import WindowMode

ROWS = [
    # (user, action, timespent, term, revenue)
    (1, "view", 10, "sports", 2.0),
    (1, "click", 5, "news", 1.0),
    (2, "view", 20, "sports", 4.0),
    (2, "view", 7, "games", 6.0),
    (3, "click", 3, "news", 1.5),
    (3, "purchase", 9, "games", 8.0),
]

LOAD = "views = LOAD 'pv' AS (user, action, timespent, term, revenue);\n"


def run_script(script, rows=ROWS):
    parsed = parse_pig(script)
    runner = BatchQueryRunner(parsed.result)
    return runner.initial_run(make_splits(rows, 2)).rows, parsed


def test_load_and_group_count():
    rows, parsed = run_script(
        LOAD
        + "byuser = GROUP views BY user;\n"
        + "counts = FOREACH byuser GENERATE group, COUNT(views);"
    )
    assert sorted(rows) == [(1, 2), (2, 2), (3, 2)]
    assert parsed.schema == ("group", "count")


def test_filter_with_boolean_operators():
    rows, _ = run_script(
        LOAD
        + "hot = FILTER views BY action == 'view' AND revenue >= 4.0;\n"
        + "byuser = GROUP hot BY user;\n"
        + "counts = FOREACH byuser GENERATE group, COUNT(hot);"
    )
    assert sorted(rows) == [(2, 2)]


def test_filter_or_and_not_and_parens():
    rows, _ = run_script(
        LOAD
        + "some = FILTER views BY NOT (action == 'view') OR timespent > 15;\n"
        + "byterm = GROUP some BY term;\n"
        + "out = FOREACH byterm GENERATE group, COUNT(some);"
    )
    assert dict(rows) == {"news": 2, "sports": 1, "games": 1}


def test_multiple_aggregates_with_aliases():
    rows, parsed = run_script(
        LOAD
        + "byaction = GROUP views BY action;\n"
        + "stats = FOREACH byaction GENERATE group, COUNT(views), "
        + "SUM(views.revenue) AS total, AVG(views.timespent) AS avg_time;"
    )
    assert parsed.schema == ("group", "count", "total", "avg_time")
    stats = {row[0]: row[1:] for row in rows}
    assert stats["view"] == (3, 12.0, 37 / 3)
    assert stats["click"][0] == 2


def test_count_distinct():
    rows, _ = run_script(
        LOAD
        + "byterm = GROUP views BY term;\n"
        + "uniq = FOREACH byterm GENERATE group, COUNT_DISTINCT(views.user);"
    )
    assert dict(rows) == {"sports": 2, "news": 2, "games": 2}


def test_foreach_projection_with_alias():
    rows, parsed = run_script(
        LOAD
        + "slim = FOREACH views GENERATE user, revenue AS money;\n"
        + "byuser = GROUP slim BY user;\n"
        + "out = FOREACH byuser GENERATE group, SUM(slim.money);"
    )
    assert parsed.relations["slim"].schema == ("user", "money")
    assert dict(rows)[2] == 10.0


def test_distinct_by_field():
    rows, _ = run_script(LOAD + "terms = DISTINCT views BY term;")
    assert sorted(rows) == [("games",), ("news",), ("sports",)]


def test_order_by_limit():
    rows, _ = run_script(
        LOAD
        + "byuser = GROUP views BY user;\n"
        + "totals = FOREACH byuser GENERATE group, SUM(views.revenue) AS total;\n"
        + "top = ORDER totals BY total DESC LIMIT 2;"
    )
    assert rows == [(2, 10.0), (3, 9.5)]


def test_positional_field_reference():
    rows, _ = run_script(
        LOAD
        + "byuser = GROUP views BY $0;\n"
        + "out = FOREACH byuser GENERATE group, COUNT(views);"
    )
    assert len(rows) == 3


def test_comments_are_ignored():
    rows, _ = run_script(
        "-- the input relation\n"
        + LOAD
        + "byuser = GROUP views BY user; -- group it\n"
        + "out = FOREACH byuser GENERATE group, COUNT(views);"
    )
    assert len(rows) == 3


def test_parsed_plan_runs_incrementally():
    parsed = parse_pig(
        LOAD
        + "byterm = GROUP views BY term;\n"
        + "out = FOREACH byterm GENERATE group, SUM(views.revenue);"
    )
    splits = make_splits(ROWS * 6, 3)
    incremental = IncrementalQueryPipeline(parsed.result, WindowMode.VARIABLE)
    batch = BatchQueryRunner(parsed.result)
    incremental.initial_run(splits[:10])
    batch.initial_run(splits[:10])
    got = incremental.advance(splits[10:12], 2)
    want = batch.advance(splits[10:12], 2)
    assert sorted(got.rows) == sorted(want.rows)


# -- error paths ---------------------------------------------------------------


@pytest.mark.parametrize(
    "script,fragment",
    [
        ("", "empty script"),
        ("x = 5;", "unsupported statement"),
        ("GROUP views BY user;", "expected"),
        (LOAD + "g = GROUP views BY user;", "bare GROUP"),
        (LOAD + "f = FILTER views BY nosuch == 1;", "unknown field"),
        (LOAD + "f = FILTER nope BY user == 1;", "unknown relation"),
        (LOAD + "g = GROUP views BY user;\no = FOREACH g GENERATE COUNT(views);",
         "must start with 'group'"),
        (LOAD + "g = GROUP views BY user;\no = FOREACH g GENERATE group, SUM();",
         "needs a field argument"),
        (LOAD + "t = ORDER views BY user;", "malformed ORDER"),
        ("v = LOAD 'x' AS ();", "at least one field"),
    ],
)
def test_parse_errors(script, fragment):
    with pytest.raises(PigParseError) as exc:
        parse_pig(script)
    assert fragment.lower() in str(exc.value).lower()


def test_filter_expression_errors():
    with pytest.raises(PigParseError):
        parse_pig(LOAD + "f = FILTER views BY user == ;")
    with pytest.raises(PigParseError):
        parse_pig(LOAD + "f = FILTER views BY (user == 1;")
    with pytest.raises(PigParseError):
        parse_pig(LOAD + "f = FILTER views BY user @@ 1;")


def test_compiled_stage_count():
    parsed = parse_pig(
        LOAD
        + "byuser = GROUP views BY user;\n"
        + "totals = FOREACH byuser GENERATE group, SUM(views.revenue);\n"
        + "top = ORDER totals BY $1 DESC LIMIT 3;"
    )
    assert compile_plan(parsed.result).num_stages() == 2


# -- JOIN -----------------------------------------------------------------------


def test_join_with_table():
    tiers = {1: "gold", 2: "silver"}
    parsed = parse_pig(
        LOAD
        + "tiered = JOIN views BY user WITH tiers AS tier;\n"
        + "bytier = GROUP tiered BY tier;\n"
        + "out = FOREACH bytier GENERATE group, COUNT(tiered);",
        tables={"tiers": tiers},
    )
    runner = BatchQueryRunner(parsed.result)
    rows = runner.initial_run(make_splits(ROWS, 2)).rows
    assert dict(rows) == {"gold": 2, "silver": 2}
    assert parsed.relations["tiered"].schema[-1] == "tier"


def test_left_join_keeps_unmatched():
    tiers = {1: "gold"}
    parsed = parse_pig(
        LOAD
        + "tiered = JOIN views BY user WITH tiers AS tier LEFT;\n"
        + "bytier = GROUP tiered BY tier;\n"
        + "out = FOREACH bytier GENERATE group, COUNT(tiered);",
        tables={"tiers": tiers},
    )
    rows = BatchQueryRunner(parsed.result).initial_run(make_splits(ROWS, 2)).rows
    assert dict(rows) == {"gold": 2, None: 4}


def test_join_unknown_table_rejected():
    with pytest.raises(PigParseError) as exc:
        parse_pig(LOAD + "j = JOIN views BY user WITH nope;")
    assert "unknown table" in str(exc.value)

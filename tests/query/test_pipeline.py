"""Integration tests: incremental query pipelines vs batch recompute."""

import pytest

from repro.query.pigmix import PIGMIX_QUERIES, PigMixDataGenerator, pigmix_query
from repro.query.pipeline import BatchQueryRunner, IncrementalQueryPipeline
from repro.slider.window import WindowMode


@pytest.fixture(scope="module")
def generator():
    return PigMixDataGenerator(seed=21)


@pytest.fixture(scope="module")
def splits(generator):
    return generator.splits(count=16, rows_per_split=25)


def rows_equal(a, b):
    def normalize(rows):
        return sorted(
            (tuple(round(x, 6) if isinstance(x, float) else x for x in row))
            for row in rows
        )

    return normalize(a) == normalize(b)


@pytest.mark.parametrize("query_name", PIGMIX_QUERIES)
def test_initial_run_matches_batch(query_name, generator, splits):
    plan = pigmix_query(query_name, generator)
    incremental = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
    batch = BatchQueryRunner(plan)
    got = incremental.initial_run(splits[:10])
    want = batch.initial_run(splits[:10])
    assert rows_equal(got.rows, want.rows)


@pytest.mark.parametrize("query_name", PIGMIX_QUERIES)
def test_incremental_slides_match_batch(query_name, generator, splits):
    plan = pigmix_query(query_name, generator)
    incremental = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
    batch = BatchQueryRunner(plan)
    incremental.initial_run(splits[:10])
    batch.initial_run(splits[:10])

    for added, removed in [(splits[10:12], 2), (splits[12:13], 3), (splits[13:16], 0)]:
        got = incremental.advance(added, removed)
        want = batch.advance(added, removed)
        assert rows_equal(got.rows, want.rows), query_name


def test_multi_stage_pipeline_has_two_stage_works(generator, splits):
    plan = pigmix_query("L3_revenue_band_histogram", generator)
    pipeline = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
    result = pipeline.initial_run(splits[:8])
    assert len(result.stage_works) == 2
    assert all(work > 0 for work in result.stage_works)


def test_incremental_query_cheaper_on_small_slides(generator):
    plan = pigmix_query("L3_revenue_band_histogram", generator)
    splits = generator.splits(count=40, rows_per_split=25)
    incremental = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
    batch = BatchQueryRunner(plan)
    incremental.initial_run(splits[:36])
    batch.initial_run(splits[:36])

    got = incremental.advance(splits[36:38], 2)
    want = batch.advance(splits[36:38], 2)
    assert rows_equal(got.rows, want.rows)
    assert got.report.work < want.report.work


def test_second_stage_reuses_unchanged_buckets(generator):
    """The §5 property: later stages absorb small diffs via strawman trees."""
    plan = pigmix_query("L3_revenue_band_histogram", generator)
    splits = generator.splits(count=30, rows_per_split=25)
    pipeline = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
    initial = pipeline.initial_run(splits[:28])
    slide = pipeline.advance(splits[28:29], 1)
    # Second-stage work on a 1-split slide is below the initial second-stage
    # work (map memo hits on unchanged buckets keep it cheap).
    assert slide.stage_works[1] < initial.stage_works[1]


def test_unknown_query_name_rejected(generator):
    with pytest.raises(ValueError):
        pigmix_query("L99_nonexistent", generator)


def test_append_mode_pipeline(generator, splits):
    plan = pigmix_query("L1_total_revenue_per_user", generator)
    incremental = IncrementalQueryPipeline(plan, WindowMode.APPEND)
    batch = BatchQueryRunner(plan)
    incremental.initial_run(splits[:8])
    batch.initial_run(splits[:8])
    got = incremental.advance(splits[8:10], 0)
    want = batch.advance(splits[8:10], 0)
    assert rows_equal(got.rows, want.rows)

"""Property tests: incremental query pipelines match a pure-Python oracle.

Hypothesis generates random row streams and window slide sequences; the
incremental pipeline's outputs must equal a dictionary-based reference
computed from the raw rows in the current window.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mapreduce.types import make_splits
from repro.query.aggregates import Count, Max, Min, SumField
from repro.query.pipeline import IncrementalQueryPipeline
from repro.query.plan import Query
from repro.slider.window import WindowMode

SCHEMA = ("user", "kind", "value")

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.sampled_from(["x", "y"]),
        st.integers(-20, 20),
    ),
    min_size=4,
    max_size=40,
)
slides_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=4
)


def reference_group_sum(rows):
    out = {}
    for user, _kind, value in rows:
        out[user] = out.get(user, 0) + value
    return out


def reference_filtered_count(rows):
    out = {}
    for user, kind, _value in rows:
        if kind == "x":
            out[user] = out.get(user, 0) + 1
    return out


def reference_min_max(rows):
    out = {}
    for _user, kind, value in rows:
        lo, hi = out.get(kind, (value, value))
        out[kind] = (min(lo, value), max(hi, value))
    return out


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy, slides=slides_strategy)
def test_group_sum_matches_oracle(rows, slides):
    plan = Query.load(SCHEMA).group_by(lambda r: r[0], SumField(2))
    _drive_and_check(plan, rows, slides, reference_group_sum)


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy, slides=slides_strategy)
def test_filter_count_matches_oracle(rows, slides):
    plan = (
        Query.load(SCHEMA)
        .filter(lambda r: r[1] == "x")
        .group_by(lambda r: r[0], Count())
    )
    _drive_and_check(plan, rows, slides, reference_filtered_count)


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy, slides=slides_strategy)
def test_min_max_matches_oracle(rows, slides):
    plan = Query.load(SCHEMA).group_by(lambda r: r[1], [Min(2), Max(2)])
    _drive_and_check(plan, rows, slides, reference_min_max)


def _drive_and_check(plan, rows, slides, oracle):
    splits = make_splits(rows, split_size=3)
    initial = max(1, len(splits) // 2)
    pipeline = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)

    window = splits[:initial]
    result = pipeline.initial_run(window)
    _check(result.rows, window, oracle)

    offset = initial
    for add_count, remove_count in slides:
        added = splits[offset : offset + add_count]
        offset += len(added)
        remove_count = min(remove_count, len(window))
        window = window[remove_count:] + added
        result = pipeline.advance(added, remove_count)
        _check(result.rows, window, oracle)


def _check(result_rows, window, oracle):
    raw = [row for split in window for row in split.records]
    expected = oracle(raw)
    got = {}
    for row in result_rows:
        key, rest = row[0], row[1:]
        got[key] = rest[0] if len(rest) == 1 else tuple(rest)
    assert got == expected

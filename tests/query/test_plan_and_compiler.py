"""Unit tests for the query plan builder and compiler."""

import pytest

from repro.common.errors import QueryCompilationError
from repro.mapreduce.runtime import BatchRuntime
from repro.mapreduce.types import make_splits
from repro.query.aggregates import Count, CountDistinct, Max, Mean, Min, SumField
from repro.query.compiler import compile_plan
from repro.query.plan import Query

ROWS = [
    # (user, action, revenue)
    (1, "view", 2.0),
    (1, "click", 1.0),
    (2, "view", 4.0),
    (2, "view", 6.0),
    (3, "click", 1.5),
]

SCHEMA = ("user", "action", "revenue")


def run_single_stage(plan, rows=ROWS):
    compiled = compile_plan(plan)
    assert compiled.num_stages() == 1
    stage = compiled.stages[0]
    outputs = BatchRuntime(stage.job).run(make_splits(rows, 2)).outputs
    return outputs, stage


def test_group_by_count():
    outputs, _ = run_single_stage(
        Query.load(SCHEMA).group_by(lambda r: r[0], Count())
    )
    assert outputs == {1: 2, 2: 2, 3: 1}


def test_group_by_sum_field():
    outputs, _ = run_single_stage(
        Query.load(SCHEMA).group_by(lambda r: r[0], SumField(2))
    )
    assert outputs[2] == 10.0


def test_group_by_min_max_mean():
    outputs, _ = run_single_stage(
        Query.load(SCHEMA).group_by(
            lambda r: r[1], [Min(2), Max(2), Mean(2)]
        )
    )
    assert outputs["view"] == (2.0, 6.0, 4.0)
    assert outputs["click"] == (1.0, 1.5, 1.25)


def test_group_by_count_distinct():
    outputs, _ = run_single_stage(
        Query.load(SCHEMA).group_by(lambda r: r[1], CountDistinct(0))
    )
    assert outputs["view"] == 2
    assert outputs["click"] == 2


def test_filter_fuses_into_map():
    outputs, _ = run_single_stage(
        Query.load(SCHEMA)
        .filter(lambda r: r[1] == "view")
        .group_by(lambda r: r[0], Count())
    )
    assert outputs == {1: 1, 2: 2}


def test_foreach_transforms_rows():
    outputs, _ = run_single_stage(
        Query.load(SCHEMA)
        .foreach(lambda r: (r[0], r[2] * 2))
        .group_by(lambda r: r[0], SumField(1))
    )
    assert outputs[2] == 20.0


def test_join_inner_drops_unmatched():
    table = {1: "gold", 2: "silver"}
    outputs, _ = run_single_stage(
        Query.load(SCHEMA)
        .join(table, key_fn=lambda r: r[0])
        .group_by(lambda r: r[-1], Count())
    )
    assert outputs == {"gold": 2, "silver": 2}


def test_join_left_outer_keeps_unmatched():
    table = {1: "gold"}
    outputs, _ = run_single_stage(
        Query.load(SCHEMA)
        .join(table, key_fn=lambda r: r[0], keep_unmatched=True, default="none")
        .group_by(lambda r: r[-1], Count())
    )
    assert outputs == {"gold": 2, "none": 3}


def test_distinct_projects_keys():
    compiled = compile_plan(Query.load(SCHEMA).distinct(lambda r: r[1]))
    stage = compiled.stages[0]
    outputs = BatchRuntime(stage.job).run(make_splits(ROWS, 2)).outputs
    rows = stage.emit_rows(outputs)
    assert rows == [("click",), ("view",)]


def test_top_keeps_n_best():
    compiled = compile_plan(
        Query.load(SCHEMA).top(2, score_fn=lambda r: r[2])
    )
    stage = compiled.stages[0]
    outputs = BatchRuntime(stage.job).run(make_splits(ROWS, 2)).outputs
    rows = stage.emit_rows(outputs)
    assert rows == [(2, "view", 6.0), (2, "view", 4.0)]


def test_top_requires_positive_n():
    with pytest.raises(ValueError):
        Query.load(SCHEMA).top(0, score_fn=lambda r: r[2])


def test_multi_stage_plan_compiles_to_pipeline():
    plan = (
        Query.load(SCHEMA)
        .group_by(lambda r: r[0], SumField(2))
        .group_by(lambda r: int(r[1]), Count())
    )
    compiled = compile_plan(plan)
    assert compiled.num_stages() == 2
    assert plan.num_stages() == 2


def test_plan_without_boundary_rejected():
    with pytest.raises(QueryCompilationError):
        compile_plan(Query.load(SCHEMA).filter(lambda r: True))


def test_plan_must_start_with_load():
    with pytest.raises(QueryCompilationError):
        compile_plan(Query(ops=[]))


def test_trailing_row_ops_postprocess():
    plan = (
        Query.load(SCHEMA)
        .group_by(lambda r: r[0], Count())
        .filter(lambda r: r[1] >= 2)
    )
    compiled = compile_plan(plan)
    stage = compiled.stages[0]
    outputs = BatchRuntime(stage.job).run(make_splits(ROWS, 2)).outputs
    rows = compiled.postprocess(stage.emit_rows(outputs))
    assert rows == [(1, 2), (2, 2)]


def test_schema_accessor():
    assert Query.load(SCHEMA).schema == SCHEMA
    with pytest.raises(ValueError):
        Query(ops=[]).schema

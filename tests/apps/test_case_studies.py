"""Unit tests for the three real-world case-study analyses (§8)."""

from repro.apps.glasnost import (
    glasnost_job,
    make_glasnost_splits,
    median_from_histogram,
)
from repro.apps.netsession import make_log_splits, netsession_audit_job
from repro.apps.twitter import make_tweet_splits, propagation_tree_job
from repro.datagen.glasnost import GlasnostTraceGenerator, TestRun
from repro.datagen.netsession import ClientLogGenerator
from repro.datagen.twitter import Tweet, TweetGenerator, TwitterGraph
from repro.mapreduce.runtime import BatchRuntime
from repro.slider.system import Slider
from repro.slider.window import WindowMode


# -- Twitter (§8.1, append-only) ------------------------------------------


def test_propagation_tree_counts_edges_and_depth():
    tweets = [
        Tweet(user=1, url=7, timestamp=1, source_user=-1),
        Tweet(user=2, url=7, timestamp=2, source_user=1),
        Tweet(user=3, url=7, timestamp=3, source_user=2),
        Tweet(user=9, url=8, timestamp=4, source_user=-1),
    ]
    job = propagation_tree_job()
    outputs = BatchRuntime(job).run(make_tweet_splits(tweets, 2)).outputs
    tree = outputs[7]
    assert tree["posts"] == 3
    assert tree["edges"] == 2
    assert tree["depth"] == 2
    assert outputs[8]["edges"] == 0


def test_propagation_tree_incremental_append_matches_batch():
    graph = TwitterGraph(num_users=60, seed=4)
    generator = TweetGenerator(graph, num_urls=12, seed=4)
    intervals = [generator.tweets(120) for _ in range(4)]
    job = propagation_tree_job()

    slider = Slider(job, WindowMode.APPEND)
    slider.initial_run(make_tweet_splits(intervals[0], 30))
    seen = list(intervals[0])
    for interval in intervals[1:]:
        seen.extend(interval)
        result = slider.advance(make_tweet_splits(interval, 30), 0)
    expected = BatchRuntime(job).run(make_tweet_splits(seen, 30)).outputs
    # Same URLs, same summaries (the splits differ, the union is equal).
    assert result.outputs == {
        url: BatchRuntime(job).run(make_tweet_splits(seen, 30)).outputs[url]
        for url in result.outputs
    }
    assert result.outputs == expected


# -- Glasnost (§8.2, fixed-width) ------------------------------------------


def test_median_from_histogram():
    histogram = ((10, 2), (20, 3))  # bins 10 and 20
    assert median_from_histogram(histogram) == (20 + 0.5) * 0.5
    assert median_from_histogram(()) == 0.0


def test_glasnost_median_min_rtt():
    runs = [
        TestRun(server=0, host=h, month=0, rtts_ms=(rtt, rtt + 5.0))
        for h, rtt in enumerate([10.0, 20.0, 30.0])
    ]
    job = glasnost_job()
    outputs = BatchRuntime(job).run(make_glasnost_splits(runs, 2)).outputs
    assert outputs[0] == 20.25  # bin 40 midpoint = 20.25ms


def test_glasnost_incremental_fixed_window_matches_batch():
    generator = GlasnostTraceGenerator(seed=2)
    months = [generator.month_of_runs(m, 40) for m in range(5)]
    job = glasnost_job()

    runs_per_split = 10
    slider = Slider(job, WindowMode.FIXED)
    window_months = months[:3]
    slider.initial_run(
        make_glasnost_splits([r for m in window_months for r in m], runs_per_split)
    )
    # Slide: drop the oldest month, add the next (equal split counts: 4 each).
    result = slider.advance(
        make_glasnost_splits(months[3], runs_per_split), removed=4
    )
    window = [r for m in months[1:4] for r in m]
    expected = BatchRuntime(job).run(
        make_glasnost_splits(window, runs_per_split)
    ).outputs
    assert result.outputs == expected


# -- NetSession (§8.3, variable-width) ---------------------------------------


def test_netsession_audit_verifies_chains():
    generator = ClientLogGenerator(num_clients=20, entries_per_client=3, seed=6)
    records = generator.week_of_logs(0)
    job = netsession_audit_job()
    outputs = BatchRuntime(job).run(make_log_splits(records, 10)).outputs
    assert len(outputs) == 20
    for audit in outputs.values():
        assert audit["chain_ok"]
        assert audit["entries"] == 3
        assert audit["bytes_served"] > 0


def test_netsession_variable_window_matches_batch():
    generator = ClientLogGenerator(num_clients=40, entries_per_client=2, seed=8)
    weeks = [
        generator.week_of_logs(w, online_fraction=f)
        for w, f in enumerate([1.0, 0.9, 0.8, 1.0, 0.75])
    ]
    job = netsession_audit_job()
    logs_per_split = 16

    split_batches = [make_log_splits(week, logs_per_split) for week in weeks]
    slider = Slider(job, WindowMode.VARIABLE)
    window = split_batches[0] + split_batches[1] + split_batches[2]
    slider.initial_run(window)
    # Slide by one week: remove week 0's splits, add week 3's.
    window = window[len(split_batches[0]) :] + split_batches[3]
    result = slider.advance(split_batches[3], removed=len(split_batches[0]))
    expected = BatchRuntime(job).run(window).outputs
    assert result.outputs == expected
    # Window sizes genuinely vary with the online fraction.
    sizes = {len(batch) for batch in split_batches}
    assert len(sizes) > 1


def test_netsession_detects_tampering():
    generator = ClientLogGenerator(
        num_clients=30, entries_per_client=4, seed=9, tamper_fraction=0.5
    )
    records = generator.week_of_logs(0)
    job = netsession_audit_job()
    outputs = BatchRuntime(job).run(make_log_splits(records, 12)).outputs
    flagged = [c for c, audit in outputs.items() if not audit["chain_ok"]]
    assert flagged, "tampered chains must be detected"

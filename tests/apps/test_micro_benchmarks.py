"""Unit tests for the five micro-benchmark applications."""

import pytest

from repro.apps.histogram import histogram_job, make_text_splits
from repro.apps.kmeans import kmeans_job, make_point_splits
from repro.apps.knn import knn_job
from repro.apps.matrix import matrix_job
from repro.apps.registry import APP_REGISTRY, micro_benchmark_apps
from repro.apps.substr import substr_job
from repro.mapreduce.runtime import BatchRuntime
from repro.slider.system import Slider
from repro.slider.window import WindowMode


def test_histogram_counts_word_shapes():
    job = histogram_job()
    splits = make_text_splits(["aa bb ccc", "dd e"], lines_per_split=1)
    outputs = BatchRuntime(job).run(splits).outputs
    assert outputs["len:2"] == 3  # aa, bb, dd
    assert outputs["len:3"] == 1
    assert outputs["len:1"] == 1
    assert outputs["first:a"] == 1


def test_matrix_counts_cooccurrences():
    job = matrix_job()
    splits = make_text_splits(["a b c"], lines_per_split=1)
    outputs = BatchRuntime(job).run(splits).outputs
    assert outputs[("a", "b")] == 1
    assert outputs[("b", "a")] == 1
    assert outputs[("a", "c")] == 1  # within context window of 2


def test_substr_counts_ngrams():
    job = substr_job()
    splits = make_text_splits(["abcd abcd"], lines_per_split=1)
    outputs = BatchRuntime(job).run(splits).outputs
    assert outputs["abc"] == 2
    assert outputs["bcd"] == 2


def test_substr_short_words_emit_whole_word():
    job = substr_job()
    splits = make_text_splits(["ab"], lines_per_split=1)
    outputs = BatchRuntime(job).run(splits).outputs
    assert outputs["ab"] == 1


def test_kmeans_assigns_points_to_nearest_centroid():
    centroids = [(0.0, 0.0), (1.0, 1.0)]
    job = kmeans_job(centroids, dimensions=2)
    points = [(0.1, 0.1), (0.2, 0.0), (0.9, 0.95)]
    splits = make_point_splits(points, points_per_split=3)
    outputs = BatchRuntime(job).run(splits).outputs
    # New centroid 0 is the mean of the two near-origin points.
    assert outputs[0] == pytest.approx((0.15, 0.05))
    assert outputs[1] == pytest.approx((0.9, 0.95))


def test_kmeans_requires_centroids():
    with pytest.raises(ValueError):
        kmeans_job([])


def test_knn_finds_nearest_points():
    queries = [(0.0, 0.0)]
    job = knn_job(queries, k=2, dimensions=2)
    points = [(0.1, 0.0), (0.5, 0.5), (0.05, 0.05), (0.9, 0.9)]
    splits = make_point_splits(points, points_per_split=2)
    outputs = BatchRuntime(job).run(splits).outputs
    assert set(outputs[0]) == {(0.05, 0.05), (0.1, 0.0)}


def test_knn_requires_queries():
    with pytest.raises(ValueError):
        knn_job([])


@pytest.mark.parametrize("spec", micro_benchmark_apps(), ids=lambda s: s.name)
def test_registry_apps_run_incrementally(spec):
    """Every registry app runs under Slider and matches batch recompute."""
    job = spec.make_job()
    initial = spec.make_splits(8, 7, 0)
    added = spec.make_splits(2, 7, 8)
    assert len({s.uid for s in initial + added}) == 10, "splits must be unique"

    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(initial)
    result = slider.advance(added, removed=2)

    window = initial[2:] + added
    expected = BatchRuntime(job).run(window).outputs
    assert_outputs_close(result.outputs, expected)


def assert_outputs_close(actual, expected):
    """Equality up to float rounding: tree combination order may differ
    from the flat batch order, so float sums can differ in the last ulps."""
    assert set(actual) == set(expected)
    for key, value in expected.items():
        got = actual[key]
        if isinstance(value, tuple) and value and isinstance(value[0], float):
            assert got == pytest.approx(value)
        else:
            assert got == value


def test_registry_split_determinism():
    spec = APP_REGISTRY["hct"]
    a = spec.make_splits(3, 5, 0)
    b = spec.make_splits(3, 5, 0)
    assert [s.uid for s in a] == [s.uid for s in b]


def test_compute_intensive_flags():
    assert APP_REGISTRY["kmeans"].compute_intensive
    assert APP_REGISTRY["knn"].compute_intensive
    assert not APP_REGISTRY["hct"].compute_intensive


def test_kmeans_map_dominates_work():
    """The Figure 9 property: compute-intensive apps are map-dominated."""
    spec = APP_REGISTRY["kmeans"]
    job = spec.make_job()
    result = BatchRuntime(job).run(spec.make_splits(4, 3, 0))
    breakdown = result.meter.snapshot()
    assert breakdown["map"] > 0.9 * result.work


def test_hct_reduce_side_is_substantial():
    """Data-intensive apps split work between phases (Figure 9)."""
    spec = APP_REGISTRY["hct"]
    job = spec.make_job()
    result = BatchRuntime(job).run(spec.make_splits(6, 3, 0))
    breakdown = result.meter.snapshot()
    assert breakdown["map"] < 0.7 * result.work

"""Figure 8: Slider's work & time speedup over the memoization strawman.

The strawman reuses Map outputs but walks the whole contraction structure
each run (§2), so Slider's advantage here isolates the benefit of the
self-adjusting trees.  Expected shape: positive but smaller speedups than
against full recomputation (the paper reports 2-4x work, 1.3-3.7x time).
"""

from __future__ import annotations

import pytest

from conftest import CHANGE_PERCENTS, MODE_LABELS, MODES, WINDOW_SPLITS
from repro.bench.format import format_series
from repro.bench.harness import (
    SlideSchedule,
    make_cluster,
    run_change_sweep,
    run_experiment,
)


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_fig08_speedups(mode, apps, benchmark):
    work_series: dict[str, list[float]] = {}
    time_series: dict[str, list[float]] = {}
    scratch_work: dict[str, list[float]] = {}
    for spec in apps:
        sweep = run_change_sweep(
            spec,
            mode,
            baseline_variant="strawman",
            change_percents=CHANGE_PERCENTS,
            window_splits=WINDOW_SPLITS,
        )
        work_series[spec.name] = sweep.work_speedups
        time_series[spec.name] = sweep.time_speedups
        scratch = run_change_sweep(
            spec,
            mode,
            baseline_variant="vanilla",
            change_percents=(5,),
            window_splits=WINDOW_SPLITS,
        )
        scratch_work[spec.name] = scratch.work_speedups

    print()
    print(
        format_series(
            f"Figure 8 (work) — {MODE_LABELS[mode]}: speedup vs strawman",
            "change%",
            CHANGE_PERCENTS,
            work_series,
        )
    )
    print(
        format_series(
            f"Figure 8 (time) — {MODE_LABELS[mode]}: speedup vs strawman",
            "change%",
            CHANGE_PERCENTS,
            time_series,
        )
    )

    compute_intensive = {s.name for s in apps if s.compute_intensive}
    for app, speedups in work_series.items():
        # Slider beats the strawman...
        assert speedups[0] > 1.0, app
        assert speedups[0] >= speedups[-1] * 0.8, app
        # ...by less than it beats recompute — guaranteed where Map work
        # dominates (the strawman's whole advantage is Map reuse).
        if app in compute_intensive:
            assert speedups[0] < scratch_work[app][0], app

    spec = next(s for s in apps if s.name == "matrix")
    schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, 5)

    def strawman_run():
        return run_experiment(
            spec, mode, schedule, variant="strawman", cluster=make_cluster()
        ).mean_incremental_work()

    benchmark.pedantic(strawman_run, rounds=1, iterations=1)

"""Ablations: bucket size (rotating) and rebuild factor (folding).

Two tunables DESIGN.md calls out:

* **Bucket size w** (§4.1): grouping the slide's w splits into one bucket
  means a slide replaces exactly one leaf.  With smaller buckets the same
  slide dirties several leaves/paths; the sweep quantifies the cost.
* **Rebuild factor** (§3.2): after a drastic shrink the plain folding tree
  can be left much taller than ⌈log₂ M⌉; rebuilding when capacity exceeds
  ``factor × window`` restores the height at a one-time cost.
"""

from __future__ import annotations

from repro.apps.registry import APP_REGISTRY
from repro.bench.format import format_table
from repro.bench.harness import SlideSchedule
from repro.core.folding import FoldingTree
from repro.core.partition import Partition
from repro.mapreduce.combiners import SumCombiner
from repro.slider.window import WindowMode

WINDOW = 32
SLIDE = 4  # splits per slide


def test_ablation_bucket_size(benchmark):
    spec = APP_REGISTRY["substr"]
    schedule = SlideSchedule(
        window_splits=WINDOW, slides=((SLIDE, SLIDE),) * 3
    )
    rows = []
    works = {}
    for bucket_size in (1, 2, 4):
        job = spec.make_job()
        from repro.slider.system import Slider, SliderConfig

        config = SliderConfig(mode=WindowMode.FIXED, bucket_size=bucket_size)
        slider = Slider(job, WindowMode.FIXED, config=config)
        slider.initial_run(spec.make_splits(WINDOW, 17, 0))
        offset = WINDOW
        total = 0.0
        for added_count, removed in schedule.slides:
            added = spec.make_splits(added_count, 17, offset)
            offset += added_count
            total += slider.advance(added, removed).report.work
        works[bucket_size] = total / len(schedule.slides)
        rows.append([bucket_size, works[bucket_size]])

    print()
    print(
        format_table(
            f"Ablation — rotating-tree bucket size (slide = {SLIDE} splits)",
            ["bucket size w", "mean incremental work"],
            rows,
        )
    )
    # One bucket per slide (w = slide) is the cheapest configuration.
    assert works[4] <= works[2] <= works[1] * 1.05

    def best_bucket():
        return works[4]

    benchmark.pedantic(best_bucket, rounds=1, iterations=1)


def _leaves(values, tag=0):
    return [Partition({"total": v, ("u", tag, i): 1}) for i, v in enumerate(values)]


def test_ablation_rebuild_factor(benchmark):
    """After a 15/16 shrink, the rebuilding tree amortizes its one-time
    rebuild within a few slides of the shorter tree."""

    def steady_state_cost(rebuild_factor):
        tree = FoldingTree(SumCombiner(), rebuild_factor=rebuild_factor)
        tree.initial_run(_leaves(range(128)))
        tree.advance(_leaves([1], tag=1), removed=120)  # drastic shrink
        before = tree.meter.total()
        for step in range(10):
            tree.advance(_leaves([step], tag=2 + step), removed=1)
        per_slide = (tree.meter.total() - before) / 10
        return per_slide, tree.height

    plain_cost, plain_height = steady_state_cost(None)
    rebuilt_cost, rebuilt_height = steady_state_cost(4)

    print()
    print(
        format_table(
            "Ablation — folding-tree rebuild factor after a 120/128 shrink",
            ["variant", "steady-state work/slide", "tree height"],
            [
                ["no rebuild", plain_cost, plain_height],
                ["rebuild_factor=4", rebuilt_cost, rebuilt_height],
            ],
        )
    )
    # The rebuilt tree is shorter and its slides are at most as expensive.
    assert rebuilt_height <= plain_height
    assert rebuilt_cost <= plain_cost * 1.05

    benchmark.pedantic(lambda: steady_state_cost(4), rounds=1, iterations=1)

"""Table 2: read-time reduction from in-memory memoization caching.

Collects the memoized state a fixed-width Slider run actually produces
(per-reducer contraction-tree node partitions) and replays the incremental
run's read set against the distributed memoization layer twice: with the
in-memory cache enabled (shim reads served from RAM) and with it disabled
(every read falls back to the fault-tolerant persistent layer — disk +
network).  Reports the per-application reduction in total read time.
Expected shape (paper): 48-68 % savings, larger for applications with
bigger memoized objects (Matrix, subStr) since the fixed index-lookup
overhead amortizes better.
"""

from __future__ import annotations

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.cluster.cache import CacheConfig, DistributedMemoCache
from repro.cluster.machine import Cluster, ClusterConfig
from repro.core.partition import Partition
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def memoized_state_of_run(spec) -> list[Partition]:
    """The tree-node partitions a fixed-width incremental run reads."""
    job = spec.make_job()
    delta = max(1, WINDOW_SPLITS * 5 // 100)
    config = SliderConfig(mode=WindowMode.FIXED, bucket_size=delta)
    slider = Slider(job, WindowMode.FIXED, config=config)
    slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
    slider.advance(spec.make_splits(delta, 17, WINDOW_SPLITS), delta)
    state: list[Partition] = []
    for tree in slider.trees:
        cache = getattr(tree, "_cache", None)
        if isinstance(cache, dict):
            state.extend(p for p in cache.values() if p)
        state.extend(p for p in tree.memo.entries.values() if p)
    return state


def block_locality_rate(spec) -> float:
    """Block-store locality hit rate of a clustered fixed-width run.

    Drives the same schedule as ``memoized_state_of_run`` but on a simulated
    cluster, so Map placement consults the replicated block store; the rate
    comes straight off the telemetry-backed store counters.
    """
    job = spec.make_job()
    delta = max(1, WINDOW_SPLITS * 5 // 100)
    config = SliderConfig(mode=WindowMode.FIXED, bucket_size=delta)
    cluster = Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0))
    slider = Slider(job, WindowMode.FIXED, config=config, cluster=cluster)
    slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
    slider.advance(spec.make_splits(delta, 17, WINDOW_SPLITS), delta)
    assert slider.blocks is not None
    return slider.blocks.locality_hit_rate


def read_time_reduction(spec) -> tuple[float, float]:
    """(read-time reduction %, memo-cache hit rate of the cached replay).

    The hit rate is measured on the in-memory-enabled replay — the reads the
    shim layer actually serves for the incremental run's read set — with a
    mid-replay machine failure so the fallback path (and so a sub-100 % hit
    rate) is part of the picture, mirroring how the paper's deployment mixes
    memory and persistent reads.
    """
    state = memoized_state_of_run(spec)
    assert state, spec.name
    times = {}
    hit_rate = 0.0
    for enabled in (True, False):
        cluster = Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0))
        cache = DistributedMemoCache(
            cluster, CacheConfig(in_memory_enabled=enabled)
        )
        for index, partition in enumerate(state):
            cache.put(index, partition)
        for index in range(len(state)):
            assert cache.fetch(index) is not None
        times[enabled] = cache.stats.read_time
        if enabled:
            # Knock out one machine and re-read: its objects fall back to
            # persistent replicas, pulling the hit rate below 100 %.
            cluster.kill(0)
            cache.on_machine_failure(0)
            for index in range(len(state)):
                assert cache.fetch(index) is not None
            hit_rate = cache.stats.hit_rate
    return 100.0 * (1.0 - times[True] / times[False]), hit_rate


def test_table2_cache(apps, benchmark):
    rows = []
    reductions = {}
    for spec in apps:
        reduction, memo_rate = read_time_reduction(spec)
        reductions[spec.name] = reduction
        locality_rate = block_locality_rate(spec)
        rows.append(
            [spec.name, reduction, 100.0 * memo_rate, 100.0 * locality_rate]
        )

    print()
    print(
        format_table(
            "Table 2 — reduction in memoized-state read time with "
            "in-memory caching (%)",
            [
                "app",
                "read-time reduction %",
                "memo-cache hit %",
                "block locality %",
            ],
            rows,
        )
    )

    # Both layers must have seen real traffic: the memo cache serves most
    # reads from memory but not all (the mid-replay failure forces some
    # fallbacks), and locality lookups found replicas for every split.
    for row in rows:
        assert 0.0 < row[2] < 100.0, row
        assert 0.0 < row[3] <= 100.0, row

    for name, reduction in reductions.items():
        # Paper band: 48-68%. Allow a generous envelope; the ordering and
        # rough magnitude are the reproducible shape.
        assert 25.0 < reduction < 80.0, (name, reduction)
    # Bigger memoized objects (matrix n-gram/pair state) benefit most.
    assert reductions["matrix"] > reductions["kmeans"]

    spec = apps[0]

    def replay():
        return read_time_reduction(spec)

    benchmark.pedantic(replay, rounds=1, iterations=1)

"""Table 1: Slider's hybrid scheduler vs the vanilla Hadoop scheduler.

Runs each application's incremental workload twice on the same simulated
cluster — once scheduled by Hadoop's first-free-slot policy (which ignores
where memoized state lives) and once by Slider's hybrid memoization-aware
scheduler — and reports the normalized run-time (Hadoop = 1).  Expected
shape (paper): the hybrid scheduler saves ~23 % for data-intensive
applications (their Reduce tasks fetch substantial memoized state over the
network under the Hadoop policy) and ~12 % for compute-intensive ones.
"""

from __future__ import annotations

import statistics

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.bench.harness import SlideSchedule, make_cluster, run_experiment
from repro.cluster.scheduler import HadoopScheduler, HybridScheduler
from repro.slider.window import WindowMode

CHANGE_PERCENT = 5


CLUSTER_SEEDS = (0, 1, 2, 3, 4)


def normalized_runtime(spec) -> float:
    """Hybrid / Hadoop mean incremental time, averaged over cluster seeds
    (which machines straggle and where state lands varies per seed)."""
    schedule = SlideSchedule.for_change(
        WindowMode.FIXED, WINDOW_SPLITS, CHANGE_PERCENT, rounds=3
    )
    ratios = []
    for seed in CLUSTER_SEEDS:
        hadoop = run_experiment(
            spec,
            WindowMode.FIXED,
            schedule,
            "slider",
            cluster=make_cluster(seed),
            scheduler=HadoopScheduler(),
        )
        hybrid = run_experiment(
            spec,
            WindowMode.FIXED,
            schedule,
            "slider",
            cluster=make_cluster(seed),
            scheduler=HybridScheduler(),
        )
        ratios.append(
            hybrid.mean_incremental_time() / hadoop.mean_incremental_time()
        )
    return statistics.mean(ratios)


def test_table1_scheduler(apps, benchmark):
    rows = []
    ratios = {}
    for spec in apps:
        ratio = normalized_runtime(spec)
        ratios[spec.name] = ratio
        rows.append([spec.name, ratio])

    print()
    print(
        format_table(
            "Table 1 — normalized run-time, Slider hybrid scheduler "
            "(Hadoop scheduler = 1)",
            ["app", "normalized run-time"],
            rows,
        )
    )

    data_ratios = [r for name, r in ratios.items() if name in ("hct", "matrix", "substr")]
    compute_ratios = [r for name, r in ratios.items() if name in ("kmeans", "knn")]
    # Every app benefits from memoization-aware placement.
    for name, ratio in ratios.items():
        assert ratio < 1.0, (name, ratio)
        assert ratio > 0.4, (name, ratio)
    # Data-intensive apps (bigger memoized state to fetch) save more.
    assert statistics.mean(data_ratios) < statistics.mean(compute_ratios)

    spec = apps[0]

    def hybrid_run():
        return normalized_runtime(spec)

    benchmark.pedantic(hybrid_run, rounds=1, iterations=1)

"""Ablation: does the mode-specialized tree actually beat the alternatives?

Slider picks a different contraction tree per window mode (§3-§4).  This
ablation runs every tree that *can* serve a mode through the same schedule
and checks that the design choice pays:

* APPEND   — coalescing vs folding vs strawman;
* FIXED    — rotating vs folding vs strawman;
* VARIABLE — folding vs randomized vs strawman.
"""

from __future__ import annotations

from conftest import WINDOW_SPLITS
from repro.apps.registry import APP_REGISTRY
from repro.bench.format import format_table
from repro.bench.harness import SlideSchedule, run_experiment
from repro.slider.window import WindowMode

CHANGE = 5

CANDIDATES = {
    WindowMode.APPEND: ("coalescing", "folding", "strawman"),
    WindowMode.FIXED: ("rotating", "folding", "strawman"),
    WindowMode.VARIABLE: ("folding", "randomized", "strawman"),
}

PAPER_CHOICE = {
    WindowMode.APPEND: "coalescing",
    WindowMode.FIXED: "rotating",
    WindowMode.VARIABLE: "folding",
}


def measure(spec, mode, tree):
    schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, CHANGE, rounds=3)
    experiment = run_experiment(spec, mode, schedule, "slider", tree=tree)
    return experiment.mean_incremental_work()


def test_ablation_tree_choice(benchmark):
    spec = APP_REGISTRY["hct"]
    rows = []
    results: dict[WindowMode, dict[str, float]] = {}
    for mode, trees in CANDIDATES.items():
        results[mode] = {}
        for tree in trees:
            work = measure(spec, mode, tree)
            results[mode][tree] = work
            rows.append([mode.value, tree, work])

    print()
    print(
        format_table(
            "Ablation — incremental work per tree variant (hct, 5% change)",
            ["mode", "tree", "mean incremental work"],
            rows,
        )
    )

    for mode, by_tree in results.items():
        choice = PAPER_CHOICE[mode]
        # The paper's pick is within 10% of the best candidate for its mode
        # (it is usually *the* best; randomized may tie folding).
        best = min(by_tree.values())
        assert by_tree[choice] <= 1.1 * best, (mode, by_tree)
        # And each specialized tree clearly beats the strawman.
        assert by_tree[choice] < by_tree["strawman"], (mode, by_tree)

    def one_cell():
        return measure(spec, WindowMode.FIXED, "rotating")

    benchmark.pedantic(one_cell, rounds=1, iterations=1)

"""Recovery: checkpoint latency and steady-state overhead.

Three numbers, recorded in ``BENCH_recovery.json`` at the repo root:

* *steady-state overhead* — the identical window schedule driven twice,
  once with fingerprint verification disabled (``memo_verify="off"``) and
  once in the default recovery posture (``"tainted"``).  The two runs
  must produce exactly equal per-phase work totals (verification is pure
  observation until something is actually tainted), and the wall-clock
  overhead should stay under the 5 % design target — the same
  methodology as ``test_telemetry_overhead.py``;
* *checkpoint write latency* — ``Slider.checkpoint`` on the warm engine;
* *restore latency* — ``Slider.restore`` plus its eager fingerprint
  sweep, validated by running one more advance on the restored engine
  and comparing outputs bit-for-bit.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

_REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"


def _drive(spec, memo_verify: str):
    """One fixed schedule under the given posture: (slider, by_phase, s)."""
    job = spec.make_job()
    config = SliderConfig(mode=WindowMode.VARIABLE, memo_verify=memo_verify)
    slider = Slider(job, WindowMode.VARIABLE, config=config)
    started = time.perf_counter()
    slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
    offset = WINDOW_SPLITS
    for _ in range(3):
        slider.advance(spec.make_splits(2, 17, offset), 2)
        offset += 2
    elapsed = time.perf_counter() - started
    return slider, dict(slider.meter.by_phase), elapsed


def test_checkpoint_overhead(apps, benchmark, tmp_path):
    spec = apps[0]

    # Warm both paths once so import costs don't skew either side.
    _drive(spec, "off")
    _drive(spec, "tainted")

    rows = []
    overheads = []
    for _ in range(3):
        _, off_phase, off_seconds = _drive(spec, "off")
        slider, on_phase, on_seconds = _drive(spec, "tainted")
        # Recovery posture is pure observation on the clean path.
        assert on_phase == off_phase
        overheads.append(100.0 * (on_seconds / off_seconds - 1.0))
        rows.append([off_seconds * 1e3, on_seconds * 1e3, overheads[-1]])
    best = min(overheads)

    # Checkpoint write / restore latency on the warm engine.
    ckpt = tmp_path / "bench-ckpt"
    started = time.perf_counter()
    slider.checkpoint(ckpt)
    write_ms = (time.perf_counter() - started) * 1e3
    ckpt_bytes = sum(f.stat().st_size for f in ckpt.iterdir())
    started = time.perf_counter()
    restored = Slider.restore(ckpt, slider.job)
    restore_ms = (time.perf_counter() - started) * 1e3

    # The restored engine must continue bit-identically.
    offset = WINDOW_SPLITS + 6
    expected = slider.advance(spec.make_splits(2, 17, offset), 2)
    got = restored.advance(spec.make_splits(2, 17, offset), 2)
    assert got.outputs == expected.outputs
    assert got.report.work == expected.report.work

    print()
    print(
        format_table(
            "Recovery — steady-state overhead "
            f"({spec.name}, best of {len(rows)}: {best:.1f}%; target <5%)",
            ["verify off ms", "default posture ms", "overhead %"],
            rows,
        )
    )
    print(
        format_table(
            "Recovery — checkpoint latency",
            ["write ms", "restore ms", "checkpoint KiB"],
            [[write_ms, restore_ms, ckpt_bytes / 1024.0]],
        )
    )

    _REPORT_PATH.write_text(
        json.dumps(
            {
                "app": spec.name,
                "steady_state_overhead_pct_best": best,
                "steady_state_overhead_pct_all": overheads,
                "target_pct": 5.0,
                "checkpoint_write_ms": write_ms,
                "checkpoint_restore_ms": restore_ms,
                "checkpoint_bytes": ckpt_bytes,
                "restored_run_bit_identical": True,
            },
            indent=2,
            sort_keys=True,
        )
    )
    shutil.rmtree(ckpt)

    # Generous CI envelope; the design target (<5 %) is documented in
    # EXPERIMENTS.md and holds on quiet machines for the best-of runs.
    assert best < 60.0, overheads

    def replay():
        return _drive(spec, "tainted")

    benchmark.pedantic(replay, rounds=1, iterations=1)

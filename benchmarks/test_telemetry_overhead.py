"""Context: overhead of the telemetry backbone itself.

Drives the identical window schedule twice — once with the default
span-recording :class:`~repro.telemetry.Telemetry` and once with the
no-op :class:`~repro.telemetry.NullTelemetry` recorder — and compares
wall-clock time.  The two runs must produce *exactly* equal per-phase
work totals (the bit-identity invariant: span recording is pure
observation), and the recording overhead should stay small — the design
target is <5 % on a realistic run; CI asserts a generous envelope since
shared-runner timings are noisy.
"""

from __future__ import annotations

import time

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode
from repro.telemetry import NullTelemetry, Telemetry


def _drive(spec, telemetry) -> tuple[dict, float]:
    """One fixed schedule under the given recorder: (by_phase, seconds)."""
    job = spec.make_job()
    config = SliderConfig(mode=WindowMode.VARIABLE)
    slider = Slider(
        job, WindowMode.VARIABLE, config=config, telemetry=telemetry
    )
    started = time.perf_counter()
    slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
    offset = WINDOW_SPLITS
    for _ in range(3):
        slider.advance(spec.make_splits(2, 17, offset), 2)
        offset += 2
    elapsed = time.perf_counter() - started
    return dict(slider.meter.by_phase), elapsed


def test_telemetry_overhead(apps, benchmark):
    spec = apps[0]

    # Warm both paths once so import/JIT-ish costs don't skew either side.
    _drive(spec, NullTelemetry(label="warmup"))
    _drive(spec, Telemetry(label="warmup"))

    rows = []
    overheads = []
    for _ in range(3):
        null_phase, null_seconds = _drive(spec, NullTelemetry(label="off"))
        full_phase, full_seconds = _drive(spec, Telemetry(label="on"))
        # The backbone is pure observation: identical float-by-float totals.
        assert full_phase == null_phase
        overheads.append(100.0 * (full_seconds / null_seconds - 1.0))
        rows.append([null_seconds * 1e3, full_seconds * 1e3, overheads[-1]])

    best = min(overheads)
    print()
    print(
        format_table(
            "Context — telemetry recording overhead "
            f"({spec.name}, best of {len(rows)}: {best:.1f}%; target <5%)",
            ["no-op recorder ms", "recording ms", "overhead %"],
            rows,
        )
    )

    # Generous CI envelope; the design target (<5 %) is documented in
    # EXPERIMENTS.md and holds on quiet machines for the best-of runs.
    assert best < 60.0, overheads

    def replay():
        return _drive(spec, Telemetry(label="bench"))

    benchmark.pedantic(replay, rounds=1, iterations=1)

"""Figure 11: effectiveness of split (background/foreground) processing.

For the append-only and fixed-width modes, compares an update processed
with split processing against the same update without it, normalizing to
the unsplit update's total time (= 1).  Expected shape: foreground latency
drops to well below 1 while a substantial share of work is offloaded to
background pre-processing, and foreground+background exceeds 1 (the extra
merge the paper notes).
"""

from __future__ import annotations

import pytest

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.bench.harness import SlideSchedule, run_experiment
from repro.slider.window import WindowMode

CHANGE_PERCENT = 5


def measure_split_processing(spec, mode):
    """Steady-state (last round) foreground and background work, normalized
    to the same round's unsplit update work."""
    schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, CHANGE_PERCENT, rounds=3)
    plain = run_experiment(spec, mode, schedule, "slider", split_mode=False)
    split = run_experiment(
        spec,
        mode,
        schedule,
        "slider",
        split_mode=True,
        background_each_round=True,
    )
    normalizer = plain.incremental[-1].work
    foreground = split.incremental[-1].work
    # The background phase preparing that round ran just before it; in
    # steady state every round also has a follow-up background phase of the
    # same size, so the last recorded value is representative.
    background = split.background_work[-1]
    return foreground / normalizer, background / normalizer


@pytest.mark.parametrize(
    "mode",
    [WindowMode.APPEND, WindowMode.FIXED],
    ids=lambda m: m.value,
)
def test_fig11_split_processing(mode, apps, benchmark):
    rows = []
    results = {}
    for spec in apps:
        foreground, background = measure_split_processing(spec, mode)
        rows.append([spec.name, foreground, background, foreground + background])
        results[spec.name] = (foreground, background)

    print()
    print(
        format_table(
            f"Figure 11 — split processing, {mode.value} mode "
            "(normalized: unsplit update = 1)",
            ["app", "foreground", "background", "fg+bg"],
            rows,
        )
    )

    for app, (foreground, background) in results.items():
        # Foreground is faster than the unsplit update...
        assert foreground < 1.0, (app, foreground)
        # ...because real work moved to the background phase.
        assert background > 0.0, app
        # The split costs an extra merge: fg+bg exceeds the unsplit total.
        assert foreground + background > 0.95, (app, foreground, background)

    spec = apps[0]
    schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, CHANGE_PERCENT)

    def split_run():
        return run_experiment(
            spec, mode, schedule, "slider",
            split_mode=True, background_each_round=True,
        )

    benchmark.pedantic(split_run, rounds=1, iterations=1)

"""Figure 10: incremental data-flow query processing (PigMix-style).

Runs the PigMix-like query suite in all three window modes with a 5 %
input change and reports work and time speedups of the incremental pipeline
over batch recomputation.  The paper reports average speedups of ~11x work
and ~2.5x time; the expected shape is work speedup >> time speedup > 1.
"""

from __future__ import annotations

import pytest

from repro.bench.format import format_table
from repro.query.pigmix import PIGMIX_QUERIES, PigMixDataGenerator, pigmix_query
from repro.query.pipeline import BatchQueryRunner, IncrementalQueryPipeline
from repro.slider.window import WindowMode

WINDOW_SPLITS = 40
CHANGE_PERCENT = 5


def run_query_suite(mode: WindowMode) -> tuple[float, float, list]:
    generator = PigMixDataGenerator(seed=33)
    splits = generator.splits(count=WINDOW_SPLITS + 6, rows_per_split=25)
    delta = max(1, WINDOW_SPLITS * CHANGE_PERCENT // 100)
    removed = 0 if mode is WindowMode.APPEND else delta

    rows = []
    work_speedups = []
    time_speedups = []
    for name in PIGMIX_QUERIES:
        plan = pigmix_query(name, generator)
        incremental = IncrementalQueryPipeline(plan, mode)
        batch = BatchQueryRunner(plan)
        incremental.initial_run(splits[:WINDOW_SPLITS])
        batch.initial_run(splits[:WINDOW_SPLITS])
        added = splits[WINDOW_SPLITS : WINDOW_SPLITS + delta]
        got = incremental.advance(added, removed)
        want = batch.advance(added, removed)
        work_speedup = want.report.work / got.report.work
        time_speedup = want.report.time / got.report.time
        rows.append([name, work_speedup, time_speedup])
        work_speedups.append(work_speedup)
        time_speedups.append(time_speedup)
    mean_work = sum(work_speedups) / len(work_speedups)
    mean_time = sum(time_speedups) / len(time_speedups)
    rows.append(["MEAN", mean_work, mean_time])
    return mean_work, mean_time, rows


@pytest.mark.parametrize("mode", list(WindowMode), ids=lambda m: m.value)
def test_fig10_query_processing(mode, benchmark):
    mean_work, mean_time, rows = run_query_suite(mode)
    print()
    print(
        format_table(
            f"Figure 10 — PigMix-style query suite, {mode.value} mode, "
            f"{CHANGE_PERCENT}% change",
            ["query", "work speedup", "time speedup"],
            rows,
        )
    )
    # Shape: clear work win, positive time win, work >= time.
    assert mean_work > 2.0
    assert mean_time > 1.0
    assert mean_work >= mean_time

    generator = PigMixDataGenerator(seed=33)
    plan = pigmix_query("L3_revenue_band_histogram", generator)
    splits = generator.splits(count=WINDOW_SPLITS + 2, rows_per_split=25)

    def one_incremental_query():
        pipeline = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
        pipeline.initial_run(splits[:WINDOW_SPLITS])
        return pipeline.advance(splits[WINDOW_SPLITS:], 2)

    benchmark.pedantic(one_incremental_query, rounds=1, iterations=1)

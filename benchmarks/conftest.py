"""Shared helpers for the per-figure/per-table benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (§7-§8): it prints the same rows/series the paper
reports, asserts the qualitative *shape* (who wins, roughly by how much,
where trends point), and times one representative incremental run via
pytest-benchmark.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.apps.registry import micro_benchmark_apps
from repro.slider.window import WindowMode

#: The paper's x-axis for Figures 7 and 8.
CHANGE_PERCENTS = (5, 10, 15, 20, 25)

#: Default window size (in splits) for micro-benchmark sweeps; large enough
#: for asymptotic behaviour, small enough for CI-speed benchmarks.
WINDOW_SPLITS = 40

MODES = (WindowMode.APPEND, WindowMode.FIXED, WindowMode.VARIABLE)

MODE_LABELS = {
    WindowMode.APPEND: "Append-only (A)",
    WindowMode.FIXED: "Fixed-width (F)",
    WindowMode.VARIABLE: "Variable-width (V)",
}


@pytest.fixture(scope="session")
def apps():
    """The five micro-benchmark applications."""
    return micro_benchmark_apps()


def run_once(callable_):
    """Adapter: pytest-benchmark pedantic single-shot execution."""
    return {"rounds": 1, "iterations": 1, "warmup_rounds": 0}

"""Table 3: the Glasnost network-monitoring case study (§8.2).

Eleven months of synthetic measurement traces whose monthly volumes are
solved from the paper's own window totals, analyzed over a 3-month window
sliding by one month: nine windows, each reporting the number of test
runs, the window-change percentage (reproduced exactly from Table 3), and
Slider's work/time speedup over recomputation.  Expected shape: speedups
on the order of 2-4x, inversely tracking the window-change percentage
(the Apr-Jun window with the smallest change gains most; Sep-Nov with the
largest change gains least).
"""

from __future__ import annotations

from repro.apps.glasnost import glasnost_job, make_glasnost_splits
from repro.bench.format import format_table
from repro.datagen.glasnost import (
    TABLE3_MONTH_NAMES,
    TABLE3_MONTHLY_RUNS,
    GlasnostTraceGenerator,
)
from repro.slider.baseline import VanillaRunner
from repro.slider.system import Slider
from repro.slider.window import WindowMode

RUNS_PER_SPLIT = 50

#: The paper's Table 3 rows for cross-checking our derived volumes.
PAPER_WINDOW_TOTALS = [4033, 4862, 5627, 5358, 4715, 4325, 4384, 4777, 6536]
PAPER_CHANGE_PERCENT = [100.0, 40.65, 34.50, 26.89, 28.27, 35.86, 34.22, 36.13, 50.64]


def test_table3_glasnost(benchmark):
    generator = GlasnostTraceGenerator(seed=11)
    month_splits = [
        make_glasnost_splits(
            generator.month_of_runs(month, count), RUNS_PER_SPLIT
        )
        for month, count in enumerate(TABLE3_MONTHLY_RUNS)
    ]

    # The window covers the most recent three months; it slides by one
    # month, whose sizes vary — a variable-width workload.
    slider = Slider(glasnost_job(), WindowMode.VARIABLE)
    vanilla = VanillaRunner(glasnost_job(), WindowMode.VARIABLE)
    window = month_splits[0] + month_splits[1] + month_splits[2]
    slider.initial_run(window)
    vanilla.initial_run(window)

    rows = []
    speedups = []
    for step in range(1, 9):
        removed = len(month_splits[step - 1])
        added = month_splits[step + 2]
        window_runs = sum(TABLE3_MONTHLY_RUNS[step : step + 3])
        change_runs = TABLE3_MONTHLY_RUNS[step + 2]
        change_percent = 100.0 * change_runs / window_runs

        s = slider.advance(added, removed)
        v = vanilla.advance(added, removed)
        assert s.outputs == v.outputs
        speedup = s.report.speedup_over(v.report)
        label = f"{TABLE3_MONTH_NAMES[step]}-{TABLE3_MONTH_NAMES[step + 2]}"
        rows.append(
            [label, window_runs, change_percent, speedup.time, speedup.work]
        )
        speedups.append((change_percent, speedup))

        # Our derived monthly volumes reproduce the paper's table exactly.
        assert window_runs == PAPER_WINDOW_TOTALS[step]
        assert abs(change_percent - PAPER_CHANGE_PERCENT[step]) < 0.05

    print()
    print(
        format_table(
            "Table 3 — Glasnost monitoring: 3-month window sliding monthly",
            ["window", "test runs", "change %", "time speedup", "work speedup"],
            rows,
        )
    )

    for change_percent, speedup in speedups:
        assert speedup.work > 1.3, (change_percent, speedup)
        assert speedup.time > 1.3, (change_percent, speedup)
        assert speedup.work < 12.0
    # Smallest change (Apr-Jun) gains more than the largest (Sep-Nov).
    smallest = min(speedups, key=lambda cs: cs[0])
    largest = max(speedups, key=lambda cs: cs[0])
    assert smallest[1].work > largest[1].work

    def one_window_slide():
        job = glasnost_job()
        s = Slider(job, WindowMode.VARIABLE)
        s.initial_run(month_splits[0] + month_splits[1] + month_splits[2])
        return s.advance(month_splits[3], len(month_splits[0]))

    benchmark.pedantic(one_window_slide, rounds=1, iterations=1)

"""Figure 13: Slider's one-time overheads for the initial run.

Three panels: (a) work overhead and (b) time overhead of the initial run
relative to vanilla Hadoop, and (c) space overhead of memoized state
normalized to the input size.  Expected shape: compute-intensive apps show
low performance overhead (their run time is dominated by real processing);
data-intensive apps pay more for memoizing intermediate tree nodes;
variable-width trees cost more than fixed-width, which cost more than
append-only; Matrix has by far the largest space overhead, K-Means/KNN
almost none.
"""

from __future__ import annotations

from conftest import MODES, WINDOW_SPLITS
from repro.bench.format import format_table
from repro.bench.harness import SlideSchedule, run_experiment
from repro.slider.window import WindowMode

MODE_LABEL = {
    WindowMode.APPEND: "append",
    WindowMode.FIXED: "fixed",
    WindowMode.VARIABLE: "variable",
}


def test_fig13_overheads(apps, benchmark):
    work_rows, time_rows, space_rows = [], [], []
    work_overheads: dict[tuple[str, str], float] = {}
    space_factors: dict[tuple[str, str], float] = {}

    from repro.bench.harness import make_cluster
    from repro.cluster.scheduler import HadoopScheduler

    for spec in apps:
        schedule = SlideSchedule.for_change(WindowMode.VARIABLE, WINDOW_SPLITS, 5)
        # Same cluster and scheduler on both sides: the overhead measured is
        # Slider's extra contraction/memoization work, not a placement
        # artifact.
        vanilla = run_experiment(
            spec,
            WindowMode.VARIABLE,
            schedule,
            "vanilla",
            cluster=make_cluster(),
            scheduler=HadoopScheduler(),
        )
        base = vanilla.initial

        input_size = sum(
            len(split) for split in spec.make_splits(WINDOW_SPLITS, 17, 0)
        )

        work_row, time_row, space_row = [spec.name], [spec.name], [spec.name]
        for mode in MODES:
            mode_schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, 5)
            slider = run_experiment(
                spec,
                mode,
                mode_schedule,
                "slider",
                cluster=make_cluster(),
                scheduler=HadoopScheduler(),
            )
            initial = slider.initial
            work_overhead = 100.0 * (initial.work - base.work) / base.work
            time_overhead = 100.0 * (initial.time - base.time) / base.time
            space_factor = initial.space / input_size
            work_row.append(work_overhead)
            time_row.append(time_overhead)
            space_row.append(space_factor)
            work_overheads[(spec.name, MODE_LABEL[mode])] = work_overhead
            space_factors[(spec.name, MODE_LABEL[mode])] = space_factor
        work_rows.append(work_row)
        time_rows.append(time_row)
        space_rows.append(space_row)

    headers = ["app", "append", "fixed", "variable"]
    print()
    print(format_table("Figure 13(a) — initial-run work overhead (%)", headers, work_rows))
    print(format_table("Figure 13(b) — initial-run time overhead (%)", headers, time_rows))
    print(
        format_table(
            "Figure 13(c) — space overhead (factor of input size)",
            headers,
            space_rows,
        )
    )

    for spec_name in ("kmeans", "knn"):
        for mode in ("append", "fixed", "variable"):
            # Compute-intensive: low relative overhead (paper: smallest bars).
            assert work_overheads[(spec_name, mode)] < 40.0, (spec_name, mode)
    for spec_name in ("hct", "matrix", "substr"):
        # Variable-width costs at least as much as append-only (more tree
        # levels to memoize).
        assert (
            work_overheads[(spec_name, "variable")]
            >= work_overheads[(spec_name, "append")] - 1.0
        ), spec_name
    # Matrix has by far the largest space overhead; K-Means/KNN far less.
    # (Absolute factors are scale-dependent — the paper's near-zero K-Means
    # overhead comes from GB-sized windows dwarfing the fixed-size tree
    # state; at laptop scale the *ordering* is the reproducible shape.)
    assert space_factors[("matrix", "variable")] > 2.0
    assert (
        space_factors[("matrix", "variable")]
        > space_factors[("kmeans", "variable")] * 4
    )
    assert space_factors[("kmeans", "variable")] < 1.0
    assert space_factors[("knn", "variable")] < 1.0

    spec = apps[0]
    schedule = SlideSchedule.for_change(WindowMode.VARIABLE, WINDOW_SPLITS, 5)

    def initial_run():
        return run_experiment(spec, WindowMode.VARIABLE, schedule, "slider").initial

    benchmark.pedantic(initial_run, rounds=1, iterations=1)

"""Figure 9: normalized work breakdown, Map vs contraction+Reduce.

For 5 % and 25 % input changes, shows how each application's incremental
work splits between the Map phase and the contraction+Reduce side, each
normalized to the corresponding phase of the vanilla Hadoop baseline ("H").
Expected shape: compute-intensive apps perform ~98 % of baseline work in
Map; Slider's Map percentage tracks the input change; the contraction+
Reduce percentage is less sensitive to the change size.
"""

from __future__ import annotations

import pytest

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.bench.harness import SlideSchedule, run_experiment
from repro.slider.window import WindowMode

MAP_PHASES = ("map",)
REDUCE_PHASES = ("contraction", "reduce", "memo_read", "memo_write", "shuffle")


def phase_sum(breakdown: dict, phases) -> float:
    return sum(breakdown.get(phase, 0.0) for phase in phases)


@pytest.mark.parametrize("change", [5, 25])
def test_fig09_breakdown(change, apps, benchmark):
    rows = []
    checks = {}
    for spec in apps:
        # Baseline phase totals ("H" bar).
        schedule = SlideSchedule.for_change(WindowMode.VARIABLE, WINDOW_SPLITS, change)
        vanilla = run_experiment(spec, WindowMode.VARIABLE, schedule, "vanilla")
        v_report = vanilla.incremental[-1]
        v_map = phase_sum(v_report.breakdown, MAP_PHASES)
        v_reduce = phase_sum(v_report.breakdown, REDUCE_PHASES)
        rows.append(
            [spec.name, "H", 100.0 * v_map / (v_map + v_reduce), 100.0]
        )
        checks[spec.name] = {"H": v_map / (v_map + v_reduce)}

        for mode, label in [
            (WindowMode.APPEND, "A"),
            (WindowMode.FIXED, "F"),
            (WindowMode.VARIABLE, "V"),
        ]:
            mode_schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, change)
            slider = run_experiment(spec, mode, mode_schedule, "slider")
            s_report = slider.incremental[-1]
            s_map = phase_sum(s_report.breakdown, MAP_PHASES)
            s_reduce = phase_sum(s_report.breakdown, REDUCE_PHASES)
            map_pct = 100.0 * s_map / v_map if v_map else 0.0
            reduce_pct = 100.0 * s_reduce / v_reduce if v_reduce else 0.0
            rows.append([spec.name, label, map_pct, reduce_pct])
            checks[spec.name][label] = (map_pct, reduce_pct)

    print()
    print(
        format_table(
            f"Figure 9 — work breakdown, {change}% change "
            "(Slider phases as % of the matching Hadoop phase)",
            ["app", "mode", "map%", "contraction+reduce%"],
            rows,
        )
    )

    for app, by_mode in checks.items():
        h_map_share = by_mode["H"]
        if app in ("kmeans", "knn"):
            # Compute-intensive apps do ~98% of baseline work in Map.
            assert h_map_share > 0.9, app
        for label in ("A", "F", "V"):
            map_pct, reduce_pct = by_mode[label]
            # Slider's Map work tracks the input change (p% of baseline,
            # with slack for split rounding).
            assert map_pct <= 3.0 * change, (app, label, map_pct)
            assert map_pct > 0.0
            # The reduce side is reduced but less change-sensitive.
            assert reduce_pct < 100.0, (app, label, reduce_pct)

    spec = apps[0]
    schedule = SlideSchedule.for_change(WindowMode.VARIABLE, WINDOW_SPLITS, change)

    def one_cell():
        return run_experiment(spec, WindowMode.VARIABLE, schedule, "slider")

    benchmark.pedantic(one_cell, rounds=1, iterations=1)

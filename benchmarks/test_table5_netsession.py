"""Table 5: the Akamai NetSession log-auditing case study (§8.3).

A month-long window of client logs sliding by one week, where only a
fraction of clients (100 % down to 75 %) is online to upload in the final
week — so each run's window size varies, exercising variable-width
windows.  Reports Slider's time/work speedup over recomputation per upload
fraction.  Expected shape (paper): speedups around 1.7-2.8x that *increase*
as the upload fraction drops (fewer new logs = smaller delta = more reuse).
"""

from __future__ import annotations

from repro.apps.netsession import make_log_splits, netsession_audit_job
from repro.bench.format import format_table
from repro.datagen.netsession import ClientLogGenerator
from repro.slider.baseline import VanillaRunner
from repro.slider.system import Slider
from repro.slider.window import WindowMode

NUM_CLIENTS = 600
LOGS_PER_SPLIT = 150
UPLOAD_FRACTIONS = (1.0, 0.95, 0.90, 0.85, 0.80, 0.75)


def measure_fraction(fraction: float) -> tuple[float, float]:
    """(time speedup, work speedup) of the 5th week's audit run."""
    generator = ClientLogGenerator(
        num_clients=NUM_CLIENTS, entries_per_client=3, seed=23
    )
    weeks = [
        make_log_splits(generator.week_of_logs(w, 1.0), LOGS_PER_SPLIT)
        for w in range(4)
    ]
    final_week = make_log_splits(
        generator.week_of_logs(4, fraction), LOGS_PER_SPLIT
    )

    job = netsession_audit_job()
    slider = Slider(job, WindowMode.VARIABLE)
    vanilla = VanillaRunner(job, WindowMode.VARIABLE)
    window = [split for week in weeks for split in week]
    slider.initial_run(window)
    vanilla.initial_run(window)

    removed = len(weeks[0])
    s = slider.advance(final_week, removed)
    v = vanilla.advance(final_week, removed)
    assert s.outputs == v.outputs
    speedup = s.report.speedup_over(v.report)
    return speedup.time, speedup.work


def test_table5_netsession(benchmark):
    rows = []
    results = {}
    for fraction in UPLOAD_FRACTIONS:
        time_speedup, work_speedup = measure_fraction(fraction)
        results[fraction] = (time_speedup, work_speedup)
        rows.append(
            [f"{int(fraction * 100)}%", time_speedup, work_speedup]
        )

    print()
    print(
        format_table(
            "Table 5 — NetSession log audits (variable-width, month window, "
            "weekly slide)",
            ["% clients online to upload", "time speedup", "work speedup"],
            rows,
        )
    )

    for fraction, (time_speedup, work_speedup) in results.items():
        assert work_speedup > 1.3, (fraction, work_speedup)
        assert time_speedup > 1.3, (fraction, time_speedup)
        assert work_speedup < 12.0
    # Fewer uploads = smaller delta = larger speedup (the paper's trend).
    assert results[0.75][1] > results[1.0][1]

    def one_audit_run():
        return measure_fraction(0.85)

    benchmark.pedantic(one_audit_run, rounds=1, iterations=1)

"""Table 4: the Twitter information-propagation case study (§8.1).

A large initial interval of tweets followed by four weekly intervals of
~5 % appends, processed append-only.  For each interval: the interval's
tweet volume, its relative change, and Slider's time/work speedup over
recomputing the whole history.  Expected shape: roughly constant speedups
across the four intervals (the paper reports ~9x time / ~14x work for a
5 % append), well above 1.
"""

from __future__ import annotations

from repro.apps.twitter import make_tweet_splits, propagation_tree_job
from repro.bench.format import format_table
from repro.datagen.twitter import TweetGenerator, TwitterGraph
from repro.slider.baseline import VanillaRunner
from repro.slider.system import Slider
from repro.slider.window import WindowMode

INITIAL_TWEETS = 20_000
WEEKLY_TWEETS = 1_000  # ~5% of the initial interval
TWEETS_PER_SPLIT = 250


def test_table4_twitter(benchmark):
    graph = TwitterGraph(num_users=800, seed=5)
    generator = TweetGenerator(graph, num_urls=300, seed=5)
    initial = make_tweet_splits(generator.tweets(INITIAL_TWEETS), TWEETS_PER_SPLIT)
    weeks = [
        make_tweet_splits(generator.tweets(WEEKLY_TWEETS), TWEETS_PER_SPLIT)
        for _ in range(4)
    ]

    job = propagation_tree_job()
    slider = Slider(job, WindowMode.APPEND)
    vanilla = VanillaRunner(job, WindowMode.APPEND)
    slider_initial = slider.initial_run(initial)
    vanilla_initial = vanilla.initial_run(initial)
    initial_overhead = (
        100.0
        * (slider_initial.report.work - vanilla_initial.report.work)
        / vanilla_initial.report.work
    )

    rows = []
    speedups = []
    total = INITIAL_TWEETS
    for index, week in enumerate(weeks):
        s = slider.advance(week, 0)
        v = vanilla.advance(week, 0)
        assert s.outputs == v.outputs
        speedup = s.report.speedup_over(v.report)
        change = 100.0 * WEEKLY_TWEETS / total
        total += WEEKLY_TWEETS
        rows.append(
            [f"interval {index + 1}", WEEKLY_TWEETS, change, speedup.time, speedup.work]
        )
        speedups.append(speedup)

    print()
    print(
        format_table(
            "Table 4 — Twitter propagation trees (append-only)"
            f" — initial-run work overhead: {initial_overhead:.1f}%",
            ["interval", "tweets", "change %", "time speedup", "work speedup"],
            rows,
        )
    )

    works = [s.work for s in speedups]
    times = [s.time for s in speedups]
    assert all(w > 3.0 for w in works), works
    assert all(t > 1.5 for t in times), times
    # Speedups stay roughly constant across the four appends.
    assert max(works) / min(works) < 1.6
    # One-time initial overhead is modest (paper: 22%).
    assert initial_overhead < 80.0

    def one_append():
        job2 = propagation_tree_job()
        s = Slider(job2, WindowMode.APPEND)
        s.initial_run(initial)
        return s.advance(weeks[0], 0)

    benchmark.pedantic(one_append, rounds=1, iterations=1)

"""Plan compilation: cold vs warm-cached vs warm-fused wall clock.

The compile layer's payoff, measured for real (``time.perf_counter``,
not the work model): one fixed steady-slide schedule driven three times —

* **cold** — plan cache and fusion off: every advance replans from the
  tree walk;
* **warm** — cache on, fusion off: steady-state advances replay the
  compiled template, skipping step re-emission;
* **fused** — cache and fusion on: replayed combines additionally
  dispatch through the vectorized batch kernels.

All three modes must produce bit-identical outputs and metered work per
advance (the compile layer is an execution detail, never a semantics
change), and the cached modes must exceed the 99 % steady-state hit-rate
bar.  Wall clock is **steady state only**: the warmup covers two full
structural periods (the first fills the plan cache, the second exercises
replay and the batch kernels so their one-time costs never land in the
measured loop), the measured periods are **interleaved across modes**
(cold, warm, fused, cold, …) so slow load drift on a shared box hits
every mode equally instead of penalising whichever ran last, and the
reported time is the minimum over a mode's periods — the standard
de-noising against scheduler and GC spikes.  With
``REPRO_BENCH_STRICT=1`` (set by the non-blocking CI bench job) the
test additionally asserts warm and fused steady state are no slower
than cold, modulo a small noise allowance.  Results land in
``BENCH_plan_compile.json`` at the repo root, cache stats included.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

_REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_plan_compile.json"

#: The folding structure key recurs with period = the next power of two
#: above the window (64 for the default 40-split window).  Warm up for
#: *two* full periods: the first period's advances are all cache misses
#: (they fill the cache), the second is the first replayed period, so
#: the one-time replay and kernel-dispatch setup costs burn off before
#: measurement starts.
_PERIOD = 64
_WARMUP_ADVANCES = 2 * _PERIOD
_MEASURED_ADVANCES = _PERIOD
#: Measured periods per mode (interleaved); the reported time is the
#: minimum.
_REPEATS = 3
#: Strict-mode noise allowance: cached modes must run within this factor
#: of cold.  On a single-CPU shared box the three modes sit within a few
#: percent of each other for light combiners (planning is a small slice
#: of an advance), so an exact ``<=`` would flake on noise while a real
#: replay regression — the thing this guard is for — blows well past it.
_STRICT_TOLERANCE = 1.10

_MODES = {
    "cold": dict(plan_cache=False, plan_fusion=False),
    "warm": dict(plan_cache=True, plan_fusion=False),
    "fused": dict(plan_cache=True, plan_fusion=True),
}


class _Drive:
    """One compile posture over the fixed schedule, advanced on demand."""

    def __init__(self, spec, config_kw):
        self.spec = spec
        config = SliderConfig(mode=WindowMode.VARIABLE, **config_kw)
        self.slider = Slider(spec.make_job(), WindowMode.VARIABLE, config=config)
        self.slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
        self.offset = WINDOW_SPLITS
        self.outputs, self.work, self.batched = [], [], 0
        self.period_seconds = []

    def warmup(self):
        for _ in range(_WARMUP_ADVANCES):
            self.slider.advance(self.spec.make_splits(1, 17, self.offset), 1)
            self.offset += 1
        self._before = self.slider.plan_cache.stats.snapshot()

    def measure_period(self):
        started = time.perf_counter()
        for _ in range(_MEASURED_ADVANCES):
            result = self.slider.advance(
                self.spec.make_splits(1, 17, self.offset), 1
            )
            self.offset += 1
            self.outputs.append(result.outputs)
            self.work.append(result.report.work)
            if result.compiled is not None:
                self.batched += result.compiled.batched_step_count()
        self.period_seconds.append(time.perf_counter() - started)

    def summary(self):
        after = self.slider.plan_cache.stats.snapshot()
        lookups = (after["hits"] + after["misses"]) - (
            self._before["hits"] + self._before["misses"]
        )
        measured_hit_rate = (
            (after["hits"] - self._before["hits"]) / lookups if lookups else 0.0
        )
        return {
            "seconds": min(self.period_seconds),
            "period_seconds": self.period_seconds,
            "outputs": self.outputs,
            "work": self.work,
            "measured_hit_rate": measured_hit_rate,
            "batched_steps": self.batched,
            "stats": after,
        }


def test_plan_compile_wall_clock(apps):
    # hct exercises SumCombiner/SumKernel; kmeans the vector kernel.
    specs = {spec.name: spec for spec in apps}
    report = {}
    rows = []
    for app_name in ("hct", "kmeans"):
        spec = specs[app_name]
        drives = {mode: _Drive(spec, kw) for mode, kw in _MODES.items()}
        for drive in drives.values():
            drive.warmup()
        # Interleave the measured periods so load drift is mode-neutral.
        for _ in range(_REPEATS):
            for drive in drives.values():
                drive.measure_period()
        runs = {mode: drive.summary() for mode, drive in drives.items()}

        cold = runs["cold"]
        for mode in ("warm", "fused"):
            # Bit-identical semantics, advance by advance.
            assert runs[mode]["outputs"] == cold["outputs"], (app_name, mode)
            assert runs[mode]["work"] == cold["work"], (app_name, mode)
            # The acceptance bar: steady state is ≥99% replay.
            assert runs[mode]["measured_hit_rate"] >= 0.99, (app_name, mode)
        assert cold["stats"]["hits"] == 0
        assert runs["fused"]["batched_steps"] > 0, "kernels never engaged"
        if os.environ.get("REPRO_BENCH_STRICT"):
            # Only the non-blocking bench job enforces the wall-clock
            # ordering; on a loaded box a blocking job would flake.
            bound = cold["seconds"] * _STRICT_TOLERANCE
            for mode in ("warm", "fused"):
                assert runs[mode]["seconds"] <= bound, (
                    f"{app_name}: steady-state {mode} "
                    f"({runs[mode]['seconds']:.3f}s) slower than cold "
                    f"({cold['seconds']:.3f}s) beyond the "
                    f"{_STRICT_TOLERANCE:.2f}x noise allowance"
                )

        report[app_name] = {
            mode: {
                "seconds": run["seconds"],
                "period_seconds": run["period_seconds"],
                "measured_hit_rate": run["measured_hit_rate"],
                "batched_steps": run["batched_steps"],
                "plan_cache": run["stats"],
            }
            for mode, run in runs.items()
        }
        report[app_name]["speedup_warm_over_cold"] = (
            cold["seconds"] / runs["warm"]["seconds"]
        )
        report[app_name]["speedup_fused_over_cold"] = (
            cold["seconds"] / runs["fused"]["seconds"]
        )
        rows.append(
            [
                app_name,
                cold["seconds"] * 1e3,
                runs["warm"]["seconds"] * 1e3,
                runs["fused"]["seconds"] * 1e3,
                report[app_name]["speedup_fused_over_cold"],
                runs["fused"]["measured_hit_rate"] * 100.0,
            ]
        )

    report["schedule"] = {
        "window_splits": WINDOW_SPLITS,
        "warmup_advances": _WARMUP_ADVANCES,
        "measured_advances": _MEASURED_ADVANCES,
        "repeats": _REPEATS,
        "timing": "min over repeats, steady state only",
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))

    print()
    print(
        format_table(
            "Plan compilation — steady-state wall clock "
            f"(min of {_REPEATS}×{_MEASURED_ADVANCES} advances after "
            f"{_WARMUP_ADVANCES}-advance warmup)",
            [
                "app",
                "cold ms",
                "warm ms",
                "fused ms",
                "fused speedup",
                "hit %",
            ],
            rows,
        )
    )

"""Plan compilation: cold vs warm-cached vs warm-fused wall clock.

The compile layer's payoff, measured for real (``time.perf_counter``,
not the work model): one fixed steady-slide schedule driven three times —

* **cold** — plan cache and fusion off: every advance replans from the
  tree walk;
* **warm** — cache on, fusion off: steady-state advances replay the
  compiled template, skipping step re-emission;
* **fused** — cache and fusion on: replayed combines additionally
  dispatch through the vectorized batch kernels.

All three modes must produce bit-identical outputs and metered work per
advance (the compile layer is an execution detail, never a semantics
change), and the cached modes must exceed the 99 % steady-state hit-rate
bar.  Results land in ``BENCH_plan_compile.json`` at the repo root,
cache stats included.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

_REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_plan_compile.json"

#: The folding structure key recurs with period = the next power of two
#: above the window (64 for the default 40-split window), so the warmup
#: must cover one full period before steady-state replay begins.
_WARMUP_ADVANCES = 64
_MEASURED_ADVANCES = 64

_MODES = {
    "cold": dict(plan_cache=False, plan_fusion=False),
    "warm": dict(plan_cache=True, plan_fusion=False),
    "fused": dict(plan_cache=True, plan_fusion=True),
}


def _drive(spec, config_kw):
    """The fixed schedule under one compile posture."""
    job = spec.make_job()
    config = SliderConfig(mode=WindowMode.VARIABLE, **config_kw)
    slider = Slider(job, WindowMode.VARIABLE, config=config)
    slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
    offset = WINDOW_SPLITS
    for _ in range(_WARMUP_ADVANCES):
        slider.advance(spec.make_splits(1, 17, offset), 1)
        offset += 1

    before = slider.plan_cache.stats.snapshot()
    outputs, work, batched = [], [], 0
    started = time.perf_counter()
    for _ in range(_MEASURED_ADVANCES):
        result = slider.advance(spec.make_splits(1, 17, offset), 1)
        offset += 1
        outputs.append(result.outputs)
        work.append(result.report.work)
        if result.compiled is not None:
            batched += result.compiled.batched_step_count()
    elapsed = time.perf_counter() - started

    after = slider.plan_cache.stats.snapshot()
    lookups = (after["hits"] + after["misses"]) - (
        before["hits"] + before["misses"]
    )
    measured_hit_rate = (
        (after["hits"] - before["hits"]) / lookups if lookups else 0.0
    )
    return {
        "seconds": elapsed,
        "outputs": outputs,
        "work": work,
        "measured_hit_rate": measured_hit_rate,
        "batched_steps": batched,
        "stats": after,
    }


def test_plan_compile_wall_clock(apps):
    # hct exercises SumCombiner/SumKernel; kmeans the vector kernel.
    specs = {spec.name: spec for spec in apps}
    report = {}
    rows = []
    for app_name in ("hct", "kmeans"):
        spec = specs[app_name]
        runs = {mode: _drive(spec, kw) for mode, kw in _MODES.items()}

        cold = runs["cold"]
        for mode in ("warm", "fused"):
            # Bit-identical semantics, advance by advance.
            assert runs[mode]["outputs"] == cold["outputs"], (app_name, mode)
            assert runs[mode]["work"] == cold["work"], (app_name, mode)
            # The acceptance bar: steady state is ≥99% replay.
            assert runs[mode]["measured_hit_rate"] >= 0.99, (app_name, mode)
        assert cold["stats"]["hits"] == 0
        assert runs["fused"]["batched_steps"] > 0, "kernels never engaged"

        report[app_name] = {
            mode: {
                "seconds": run["seconds"],
                "measured_hit_rate": run["measured_hit_rate"],
                "batched_steps": run["batched_steps"],
                "plan_cache": run["stats"],
            }
            for mode, run in runs.items()
        }
        report[app_name]["speedup_warm_over_cold"] = (
            cold["seconds"] / runs["warm"]["seconds"]
        )
        report[app_name]["speedup_fused_over_cold"] = (
            cold["seconds"] / runs["fused"]["seconds"]
        )
        rows.append(
            [
                app_name,
                cold["seconds"] * 1e3,
                runs["warm"]["seconds"] * 1e3,
                runs["fused"]["seconds"] * 1e3,
                report[app_name]["speedup_fused_over_cold"],
                runs["fused"]["measured_hit_rate"] * 100.0,
            ]
        )

    report["schedule"] = {
        "window_splits": WINDOW_SPLITS,
        "warmup_advances": _WARMUP_ADVANCES,
        "measured_advances": _MEASURED_ADVANCES,
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))

    print()
    print(
        format_table(
            "Plan compilation — steady-state wall clock "
            f"({_MEASURED_ADVANCES} advances after "
            f"{_WARMUP_ADVANCES}-advance warmup)",
            [
                "app",
                "cold ms",
                "warm ms",
                "fused ms",
                "fused speedup",
                "hit %",
            ],
            rows,
        )
    )

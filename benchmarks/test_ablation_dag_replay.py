"""Ablation: replaying the task-graph IR vs the legacy two-wave replay.

The two-wave time model lumps each reducer's whole tree update into one
task behind a global map barrier, so its makespan is bounded below by the
heaviest reducer's *total* work no matter how many machines exist.  The
task-graph replay (``time_model="dag"``) schedules each recorded
sub-computation individually with topological readiness, so once the
cluster has more slots than there are reducers, independent combiner
invocations inside one tree spread across machines and the makespan falls
toward the graph's critical path instead.

This sweep runs the identical incremental window movement under both time
models across cluster sizes.  Work is identical by construction (the time
model only changes the replay); the makespans diverge as slots grow.
"""

from __future__ import annotations

from repro.bench.format import format_table
from repro.cluster.machine import Cluster, ClusterConfig
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

#: Two variants is the acceptance floor; both support VARIABLE windows.
VARIANTS = ("folding", "strawman")

#: machines sweep; 2 slots each.  With NUM_REDUCERS=2 the barrier model
#: stops scaling at 1 machine (2 slots >= 2 reduce tasks), the dag model
#: keeps going.
MACHINE_SWEEP = (1, 2, 4, 8, 16)

NUM_REDUCERS = 2
WINDOW_SPLITS = 24
RECORDS_PER_SPLIT = 24


def count_job():
    return MapReduceJob(
        name="dag-ablation",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=NUM_REDUCERS,
    )


def splits(start, count):
    return [
        Split.from_records(
            [f"w{(i * 11 + j) % 64}" for j in range(RECORDS_PER_SPLIT)],
            label=f"s{i}",
        )
        for i in range(start, start + count)
    ]


def run_window(variant: str, machines: int, time_model: str):
    """initial window + one slide; returns (incremental makespan, graph)."""
    cluster = Cluster(
        ClusterConfig(num_machines=machines, straggler_fraction=0.0)
    )
    config = SliderConfig(
        mode=WindowMode.VARIABLE, tree=variant, time_model=time_model
    )
    slider = Slider(
        count_job(), WindowMode.VARIABLE, config=config, cluster=cluster
    )
    slider.initial_run(splits(0, WINDOW_SPLITS))
    result = slider.advance(splits(100, 2), removed=2)
    return result.report.time, result.graph


def sweep(variant: str):
    rows = []
    for machines in MACHINE_SWEEP:
        waves_time, _ = run_window(variant, machines, "waves")
        dag_time, graph = run_window(variant, machines, "dag")
        rows.append(
            {
                "machines": machines,
                "slots": machines * 2,
                "waves": waves_time,
                "dag": dag_time,
                "critical_path": graph.critical_path_length(),
                "nodes": len(graph.nodes),
            }
        )
    return rows


def test_ablation_dag_replay(benchmark):
    all_rows = {variant: sweep(variant) for variant in VARIANTS}

    for variant, rows in all_rows.items():
        print()
        print(
            format_table(
                f"DAG replay vs two-wave replay — {variant} tree, "
                f"{NUM_REDUCERS} reducers",
                [
                    "machines",
                    "slots",
                    "waves makespan",
                    "dag makespan",
                    "critical path",
                    "graph nodes",
                ],
                [
                    [
                        r["machines"],
                        r["slots"],
                        r["waves"],
                        r["dag"],
                        r["critical_path"],
                        r["nodes"],
                    ]
                    for r in rows
                ],
            )
        )

    for variant, rows in all_rows.items():
        for r in rows:
            # Any replay is bounded below by the dependency structure.
            assert r["dag"] >= r["critical_path"] - 1e-9, (variant, r)

        # Once slots exceed the reducer count, sub-computation scheduling
        # must strictly beat the per-reducer barrier model (the acceptance
        # criterion, on both variants).
        saturated = [r for r in rows if r["slots"] > NUM_REDUCERS]
        assert saturated
        for r in saturated:
            assert r["dag"] < r["waves"], (variant, r)

        # The barrier model stops improving once every reduce task has a
        # slot; the dag model keeps extracting parallelism from inside
        # the trees: at the largest cluster it sits within 2x of the
        # critical path while the waves makespan stays pinned far above.
        last = rows[-1]
        assert last["dag"] <= 2.0 * last["critical_path"], (variant, last)

    benchmark.pedantic(
        lambda: run_window("folding", 8, "dag"), rounds=1, iterations=1
    )

"""Execution backends: in-process vs multi-process workers sweep.

One fixed steady-slide schedule per app, driven under the in-process
backend and under the process backend at 1, 2, 4, and 8 workers.  Two
claims are checked:

* **Equivalence is unconditional.**  Outputs and metered work per
  advance are bit-identical across every backend configuration — the
  execution backend is a placement decision, never a semantics change.
* **Speedup is hardware-conditional.**  Worker processes can only beat
  the in-process path when the host actually has CPUs to run them on,
  so the ``speedup > 1`` assertion (workers=4, at least one app) is
  gated on ``os.cpu_count() >= 2``.  On a single-CPU box the sweep
  still runs — dispatch, shared-memory traffic, and merge are all
  exercised and the numbers are recorded with ``host_cpus`` so a reader
  can tell a slow box from a slow backend.

Wall clock is steady state only (two-period warmup fills the plan cache
and burns off one-time pool/segment setup; the process backend only
dispatches when replaying a compiled plan, so warmup also guarantees
the measured advances actually cross the process seam), with measured
periods interleaved across configurations and min-over-repeats
reported.  Results land in ``BENCH_parallel.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import WINDOW_SPLITS
from repro.bench.format import format_table
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

_REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"

#: Folding structural period for the 40-split window (next power of two).
_PERIOD = 64
_WARMUP_ADVANCES = 2 * _PERIOD
#: Steady state replays regardless of position in the period, so the
#: measured stretch need not cover a full period.
_MEASURED_ADVANCES = 32
_REPEATS = 2

_WORKERS_SWEEP = (1, 2, 4, 8)


def _configs():
    yield "inprocess", dict(execution_backend="inprocess")
    for workers in _WORKERS_SWEEP:
        yield f"process-{workers}", dict(
            execution_backend="process", workers=workers
        )


class _Drive:
    """One backend configuration over the fixed schedule."""

    def __init__(self, spec, config_kw):
        self.spec = spec
        config = SliderConfig(mode=WindowMode.VARIABLE, **config_kw)
        self.slider = Slider(spec.make_job(), WindowMode.VARIABLE, config=config)
        self.slider.initial_run(spec.make_splits(WINDOW_SPLITS, 17, 0))
        self.offset = WINDOW_SPLITS
        self.outputs, self.work = [], []
        self.period_seconds = []

    def advance_many(self, count, record=False):
        for _ in range(count):
            result = self.slider.advance(
                self.spec.make_splits(1, 17, self.offset), 1
            )
            self.offset += 1
            if record:
                self.outputs.append(result.outputs)
                self.work.append(result.report.work)

    def measure_period(self):
        started = time.perf_counter()
        self.advance_many(_MEASURED_ADVANCES, record=True)
        self.period_seconds.append(time.perf_counter() - started)

    def counters(self, prefix="backend."):
        return {
            name: value
            for name, value in self.slider.telemetry.counters.items()
            if name.startswith(prefix)
        }

    def close(self):
        self.slider.close()


def test_parallel_workers_sweep(apps):
    host_cpus = os.cpu_count() or 1
    specs = {spec.name: spec for spec in apps}
    report = {"host_cpus": host_cpus}
    rows = []
    speedups_at_4 = []
    for app_name in ("hct", "kmeans"):
        spec = specs[app_name]
        drives = {name: _Drive(spec, kw) for name, kw in _configs()}
        try:
            for drive in drives.values():
                drive.advance_many(_WARMUP_ADVANCES)
            # Interleave measured periods so load drift is config-neutral.
            for _ in range(_REPEATS):
                for drive in drives.values():
                    drive.measure_period()

            base = drives["inprocess"]
            base_seconds = min(base.period_seconds)
            app_report = {}
            for name, drive in drives.items():
                # The backend never changes what a run computes.
                assert drive.outputs == base.outputs, (app_name, name)
                assert drive.work == base.work, (app_name, name)
                counters = drive.counters()
                if name != "inprocess":
                    # The measured advances really crossed the seam.
                    assert counters.get("backend.dispatched_reducers", 0) > 0, (
                        f"{app_name}/{name}: process backend never dispatched"
                    )
                seconds = min(drive.period_seconds)
                app_report[name] = {
                    "seconds": seconds,
                    "period_seconds": drive.period_seconds,
                    "speedup_over_inprocess": base_seconds / seconds,
                    "backend_counters": counters,
                }
            report[app_name] = app_report
            speedups_at_4.append(
                app_report["process-4"]["speedup_over_inprocess"]
            )
            rows.append(
                [app_name, base_seconds * 1e3]
                + [
                    app_report[f"process-{w}"]["seconds"] * 1e3
                    for w in _WORKERS_SWEEP
                ]
                + [app_report["process-4"]["speedup_over_inprocess"]]
            )
        finally:
            for drive in drives.values():
                drive.close()

    if host_cpus >= 2:
        # On real multi-core hardware at least one app must profit.
        assert max(speedups_at_4) > 1.0, (
            f"no app sped up at workers=4 on a {host_cpus}-CPU host: "
            f"{speedups_at_4}"
        )

    report["schedule"] = {
        "window_splits": WINDOW_SPLITS,
        "warmup_advances": _WARMUP_ADVANCES,
        "measured_advances": _MEASURED_ADVANCES,
        "repeats": _REPEATS,
        "timing": "min over interleaved repeats, steady state only",
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))

    print()
    print(
        format_table(
            f"Execution backends — workers sweep (host_cpus={host_cpus}, "
            f"min of {_REPEATS}x{_MEASURED_ADVANCES} advances after "
            f"{_WARMUP_ADVANCES}-advance warmup)",
            ["app", "inproc ms"]
            + [f"w={w} ms" for w in _WORKERS_SWEEP]
            + ["speedup@4"],
            rows,
        )
    )

"""Analysis-pass runtime budget: ``--self`` must stay cheap enough to gate.

``python -m repro.analysis --self`` is a *blocking* CI job, so its
wall-clock is part of the contract: a parallel-safety pass nobody can
afford to run is a pass nobody runs.  This bench times the gate three
ways and records the numbers in ``BENCH_analysis.json`` at the repo root:

* *full self pass* — lint + purity + laws + effects + trust audit +
  per-variant certification (races + shared-state), certificates and
  SARIF written to a scratch dir: exactly what CI runs;
* *lint only* — the AST half with every dynamic pass gated off, the
  floor the full pass builds on;
* *certification only* — the five tree-variant certificates alone, the
  expensive new half of the gate.

The full pass must finish inside ``BUDGET_SECONDS`` — a generous CI
envelope (shared runners, cold caches); on a quiet machine the pass is
an order of magnitude faster.
"""

from __future__ import annotations

import contextlib
import io
import json
import time
from pathlib import Path

from repro.analysis.cli import main
from repro.bench.format import format_table

_REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_analysis.json"

#: Hard ceiling for the full --self pass (seconds).  Blocking-gate budget,
#: sized for shared CI runners; local runs should come in far under.
BUDGET_SECONDS = 120.0

_LINT_ONLY = [
    "--self", "--no-laws", "--no-purity", "--no-effects",
    "--no-races", "--no-shared",
]
_CERTIFY_ONLY = ["--self", "--no-lint", "--no-purity", "--no-laws", "--no-effects"]


def _timed_self(argv: list[str]) -> float:
    """Run the CLI in-process, require exit 0, return wall-clock seconds."""
    sink = io.StringIO()
    started = time.perf_counter()
    with contextlib.redirect_stdout(sink):
        code = main(argv)
    elapsed = time.perf_counter() - started
    assert code == 0, sink.getvalue()
    return elapsed


def test_analysis_budget(benchmark, tmp_path):
    cert_dir = tmp_path / "certs"
    sarif_path = tmp_path / "findings.sarif"
    full_argv = [
        "--self",
        "--certificates", str(cert_dir),
        "--sarif", str(sarif_path),
    ]

    full_s = _timed_self(full_argv)
    lint_s = _timed_self(_LINT_ONLY)
    certify_s = _timed_self(_CERTIFY_ONLY)

    # The artifacts CI uploads must actually have been produced.
    assert sorted(p.name for p in cert_dir.glob("*.json")) == [
        "coalescing.json", "folding.json", "randomized.json",
        "rotating.json", "strawman.json",
    ]
    assert sarif_path.exists()

    print()
    print(
        format_table(
            f"Analysis --self wall-clock (budget {BUDGET_SECONDS:.0f}s)",
            ["full s", "lint-only s", "certification-only s"],
            [[full_s, lint_s, certify_s]],
        )
    )

    _REPORT_PATH.write_text(
        json.dumps(
            {
                "budget_seconds": BUDGET_SECONDS,
                "self_full_seconds": full_s,
                "self_lint_only_seconds": lint_s,
                "self_certification_only_seconds": certify_s,
                "within_budget": full_s < BUDGET_SECONDS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert full_s < BUDGET_SECONDS, (
        f"--self took {full_s:.1f}s, over the {BUDGET_SECONDS:.0f}s "
        "blocking-gate budget"
    )

    benchmark.pedantic(lambda: _timed_self(_LINT_ONLY), rounds=1, iterations=1)

"""Ablation: what the fault-tolerant memoization layer buys (§6).

The paper motivates replicating memoized state: losing a machine's
in-memory cache would otherwise "trigger otherwise unnecessary
recomputations".  This ablation quantifies that: a randomized contraction
tree (content-memoized through the distributed cache) re-runs an identical
window after a full cluster memory wipe, with and without persistent
replicas.  With replicas the rerun is nearly free (fallback reads only);
without them it pays the full reconstruction.
"""

from __future__ import annotations

from repro.bench.format import format_table
from repro.cluster.cache import CacheConfig, DistributedMemoCache
from repro.cluster.machine import Cluster, ClusterConfig
from repro.core.memo import MemoTable
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.mapreduce.combiners import SumCombiner

WINDOW = 128


def leaves(count):
    return [Partition({"total": v, ("u", v): 1}) for v in range(count)]


def rerun_cost_after_wipe(replicas: int) -> tuple[float, int]:
    """(work of the post-wipe rerun, fallback reads served)."""
    cluster = Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0))
    cache = DistributedMemoCache(cluster, CacheConfig(replicas=replicas))
    tree = RandomizedFoldingTree(
        SumCombiner(), memo=MemoTable(backing=cache), auto_gc=False, seed=3
    )
    tree.initial_run(leaves(WINDOW))

    # Cluster-wide restart: every machine loses its in-memory state, and
    # the workers' local memo tables die with their processes.
    for machine in cluster.machines:
        cache.on_machine_failure(machine.machine_id)
    tree.memo.entries.clear()

    before = tree.meter.total()
    root = tree.advance([], 0)
    assert root.get("total") == sum(range(WINDOW))
    return tree.meter.total() - before, cache.stats.fallback_reads


def test_ablation_fault_tolerance(benchmark):
    with_replicas, fallback_with = rerun_cost_after_wipe(replicas=2)
    without_replicas, fallback_without = rerun_cost_after_wipe(replicas=0)

    print()
    print(
        format_table(
            "Ablation — rerun cost after a full cluster memory wipe",
            ["configuration", "rerun work", "replica (fallback) reads"],
            [
                ["2 persistent replicas", with_replicas, fallback_with],
                ["no replication", without_replicas, fallback_without],
            ],
        )
    )

    # Replicas turn a full recomputation into cheap fallback reads.
    assert fallback_with > 0
    assert fallback_without == 0
    assert with_replicas < without_replicas / 5

    benchmark.pedantic(
        lambda: rerun_cost_after_wipe(replicas=2), rounds=1, iterations=1
    )

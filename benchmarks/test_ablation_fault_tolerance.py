"""Ablation: what the fault-tolerant memoization layer buys (§6).

The paper motivates replicating memoized state: losing a machine's
in-memory cache would otherwise "trigger otherwise unnecessary
recomputations".  This ablation quantifies that: a randomized contraction
tree (content-memoized through the distributed cache) re-runs an identical
window after a full cluster memory wipe, with and without persistent
replicas.  With replicas the rerun is nearly free (fallback reads only);
without them it pays the full reconstruction.
"""

from __future__ import annotations

from repro.bench.format import format_table
from repro.cluster.cache import CacheConfig, DistributedMemoCache
from repro.cluster.machine import Cluster, ClusterConfig
from repro.core.memo import MemoTable
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.mapreduce.combiners import SumCombiner

WINDOW = 128


def leaves(count):
    return [Partition({"total": v, ("u", v): 1}) for v in range(count)]


def rerun_cost_after_wipe(replicas: int) -> tuple[float, int]:
    """(work of the post-wipe rerun, fallback reads served)."""
    cluster = Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0))
    cache = DistributedMemoCache(cluster, CacheConfig(replicas=replicas))
    tree = RandomizedFoldingTree(
        SumCombiner(), memo=MemoTable(backing=cache), auto_gc=False, seed=3
    )
    tree.initial_run(leaves(WINDOW))

    # Cluster-wide restart: every machine loses its in-memory state, and
    # the workers' local memo tables die with their processes.
    for machine in cluster.machines:
        cache.on_machine_failure(machine.machine_id)
    tree.memo.entries.clear()

    before = tree.meter.total()
    root = tree.advance([], 0)
    assert root.get("total") == sum(range(WINDOW))
    return tree.meter.total() - before, cache.stats.fallback_reads


def test_ablation_fault_tolerance(benchmark):
    with_replicas, fallback_with = rerun_cost_after_wipe(replicas=2)
    without_replicas, fallback_without = rerun_cost_after_wipe(replicas=0)

    print()
    print(
        format_table(
            "Ablation — rerun cost after a full cluster memory wipe",
            ["configuration", "rerun work", "replica (fallback) reads"],
            [
                ["2 persistent replicas", with_replicas, fallback_with],
                ["no replication", without_replicas, fallback_without],
            ],
        )
    )

    # Replicas turn a full recomputation into cheap fallback reads.
    assert fallback_with > 0
    assert fallback_without == 0
    assert with_replicas < without_replicas / 5

    benchmark.pedantic(
        lambda: rerun_cost_after_wipe(replicas=2), rounds=1, iterations=1
    )


# -- crash-timing sweep -------------------------------------------------------


def run_with_crash(crash_at: str) -> dict:
    """One incremental run with a machine crash at a chosen moment.

    ``crash_at``: "none" (fault-free), "mid-map" (during the map wave),
    "mid-reduce" (after the shuffle barrier), or "between-runs" (the
    legacy FaultInjector moment, before the run starts).
    Returns time/recovery numbers for the incremental run.
    """
    from repro.cluster.chaos import ChaosPlan, ChaosSchedule, MachineCrash
    from repro.mapreduce.job import MapReduceJob
    from repro.mapreduce.types import make_splits
    from repro.slider.system import Slider
    from repro.slider.window import WindowMode

    def build(chaos=None):
        job = MapReduceJob(
            name="wc-crash",
            map_fn=lambda line: [(w, 1) for w in line.split()],
            combiner=SumCombiner(),
            num_reducers=4,
        )
        cluster = Cluster(
            ClusterConfig(num_machines=8, straggler_fraction=0.0, seed=5)
        )
        return Slider(job, WindowMode.VARIABLE, cluster=cluster, chaos=chaos)

    corpus = [f"w{i % 17} w{i % 7} w{i % 3}" for i in range(240)]
    splits = make_splits(corpus, 2)

    # Probe run to learn where the map/reduce boundary falls in sim time.
    probe = build()
    probe.initial_run(splits[:80])
    probe_result = probe.advance(splits[80:96], 12)
    calm_time = probe_result.report.time
    # Fault-free runs leave no recovery data; re-run the same delta under
    # an always-on executor to read the map-wave finish time.
    from repro.cluster.executor import ExecutorConfig

    shadow = build()
    shadow.executor_config = ExecutorConfig()
    shadow.initial_run(splits[:80])
    map_finish = shadow.advance(splits[80:96], 12).report.recovery["map_finish"]

    when = {
        "none": None,
        "mid-map": map_finish * 0.5,
        "mid-reduce": map_finish + (calm_time - map_finish) * 0.25,
        "between-runs": None,
    }[crash_at]

    slider = build()
    if crash_at == "between-runs":
        slider.initial_run(splits[:80])
        slider.cluster.kill(2)
        slider.on_machine_failure(2)
        slider.set_chaos(None, ExecutorConfig())
    else:
        chaos = None
        if when is not None:
            chaos = ChaosPlan(
                schedules={1: ChaosSchedule(
                    crashes=[MachineCrash(time=when, machine_id=2)]
                )}
            )
        slider.set_chaos(chaos, ExecutorConfig())
        slider.initial_run(splits[:80])
    result = slider.advance(splits[80:96], 12)
    assert result.outputs == probe_result.outputs
    recovery = result.report.recovery
    return {
        "crash": crash_at,
        "time": result.report.time,
        "overhead": result.report.time - calm_time,
        "re-executed": recovery.get("re_executed_attempts", 0.0),
        "detect delay": recovery.get("detection_delay", 0.0),
        "repair bytes": recovery.get("repair_bytes", 0.0)
        + recovery.get("block_repair_traffic", 0.0),
    }


def test_crash_timing_sweep(benchmark):
    """Mid-map vs mid-reduce vs between-runs crash cost (§6).

    Outputs stay identical in every scenario; what varies is the recovery
    overhead: mid-wave crashes pay attempt re-execution plus the heartbeat
    detection delay, while between-runs crashes only pay re-replication
    and slower (fallback) memoized reads.
    """
    rows = [
        run_with_crash(timing)
        for timing in ("none", "mid-map", "mid-reduce", "between-runs")
    ]
    print()
    print(
        format_table(
            "Recovery overhead by crash timing (incremental run, machine 2)",
            list(rows[0].keys()),
            [list(row.values()) for row in rows],
        )
    )
    by_name = {row["crash"]: row for row in rows}
    assert by_name["none"]["overhead"] == 0.0
    for timing in ("mid-map", "mid-reduce"):
        assert by_name[timing]["re-executed"] >= 0
        assert by_name[timing]["time"] >= by_name["none"]["time"] - 1e-9

    benchmark.pedantic(
        lambda: run_with_crash("mid-map"), rounds=1, iterations=1
    )

"""Micro-benchmarks of the raw contraction-tree operations.

Not a paper figure — a performance-regression harness for the data
structures themselves: initial construction and single-slide updates for
every tree variant, on a 256-leaf window of aggregating partitions.  These
run multiple rounds (they are microseconds-fast), so pytest-benchmark's
statistics are meaningful here.
"""

from __future__ import annotations

import pytest

from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.mapreduce.combiners import SumCombiner

WINDOW = 256

TREES = {
    "folding": lambda: FoldingTree(SumCombiner()),
    "randomized": lambda: RandomizedFoldingTree(SumCombiner(), seed=1),
    "rotating": lambda: RotatingTree(SumCombiner(), bucket_size=1),
    "coalescing": lambda: CoalescingTree(SumCombiner()),
    "strawman": lambda: StrawmanTree(SumCombiner()),
}


def leaves(count, tag=0):
    return [Partition({"total": v, ("u", tag, v): 1}) for v in range(count)]


@pytest.mark.parametrize("name", list(TREES), ids=list(TREES))
def test_initial_run_speed(name, benchmark):
    window = leaves(WINDOW)

    def build():
        return TREES[name]().initial_run(window)

    root = benchmark(build)
    assert root.get("total") == sum(range(WINDOW))


@pytest.mark.parametrize("name", list(TREES), ids=list(TREES))
def test_slide_speed(name, benchmark):
    removed = 0 if name == "coalescing" else 1
    counter = [WINDOW]

    def setup():
        tree = TREES[name]()
        tree.initial_run(leaves(WINDOW))
        counter[0] += 1
        new_leaf = Partition({"total": counter[0], ("new", counter[0]): 1})
        return (tree, [new_leaf]), {}

    def slide(tree, added):
        return tree.advance(added, removed)

    benchmark.pedantic(slide, setup=setup, rounds=30)

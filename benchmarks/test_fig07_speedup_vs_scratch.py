"""Figure 7: Slider's work & time speedup over recomputing from scratch.

Six panels in the paper: work and time speedups for the three window modes
(append-only, fixed-width, variable-width) across the five applications,
for 5..25 % incremental input change.  Expected shape: large speedups at
small deltas, shrinking as the overlap between windows shrinks; the
compute-intensive apps (K-Means, KNN) gain most in work terms.
"""

from __future__ import annotations

import pytest

from conftest import CHANGE_PERCENTS, MODE_LABELS, MODES, WINDOW_SPLITS
from repro.bench.format import format_series
from repro.bench.harness import SlideSchedule, make_cluster, run_change_sweep, run_experiment


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_fig07_speedups(mode, apps, benchmark):
    work_series: dict[str, list[float]] = {}
    time_series: dict[str, list[float]] = {}
    for spec in apps:
        sweep = run_change_sweep(
            spec,
            mode,
            baseline_variant="vanilla",
            change_percents=CHANGE_PERCENTS,
            window_splits=WINDOW_SPLITS,
        )
        work_series[spec.name] = sweep.work_speedups
        time_series[spec.name] = sweep.time_speedups

    print()
    print(
        format_series(
            f"Figure 7 (work) — {MODE_LABELS[mode]}: speedup vs recompute",
            "change%",
            CHANGE_PERCENTS,
            work_series,
        )
    )
    print(
        format_series(
            f"Figure 7 (time) — {MODE_LABELS[mode]}: speedup vs recompute",
            "change%",
            CHANGE_PERCENTS,
            time_series,
        )
    )

    for app, speedups in work_series.items():
        # Slider always wins, and wins more at smaller deltas.
        assert speedups[0] > speedups[-1] > 1.0, app
    for app, speedups in time_series.items():
        assert all(s > 1.0 for s in speedups), app
    # Compute-intensive apps gain the most in work terms at 5 % change.
    assert work_series["kmeans"][0] > work_series["hct"][0] * 0.8

    # Time one representative incremental run (kmeans at 5 % change).
    spec = next(s for s in apps if s.name == "kmeans")
    schedule = SlideSchedule.for_change(mode, WINDOW_SPLITS, 5)

    def incremental_run():
        return run_experiment(
            spec, mode, schedule, variant="slider", cluster=make_cluster()
        ).mean_incremental_work()

    benchmark.pedantic(incremental_run, rounds=1, iterations=1)

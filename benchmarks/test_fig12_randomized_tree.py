"""Figure 12: randomized folding tree vs the plain folding tree.

Two update scenarios on a variable-width window: shrink the window by 25 %
or by 50 % (plus a 1 % add), then keep sliding at the shrunken size.  The
paper's finding: the large 50 % shrink is where randomization pays off
(15-22 % work savings, because the randomized tree's expected height
immediately tracks the live window while the plain tree stays at the
pre-shrink height), while under the milder 25 % shrink the plain tree is
similar or slightly better.

The height advantage converts into work savings when per-node data
movement dominates — large partitions flowing through every tree level.
The primary measurement therefore drives the bare trees with
key-accumulating partitions (each leaf contributes unique keys, as Matrix
and subStr do); an app-level sweep is printed alongside for context, where
tiny per-reducer partitions (K-Means) dilute the effect to parity.
"""

from __future__ import annotations

import statistics


from repro.apps.registry import APP_REGISTRY
from repro.bench.format import format_table
from repro.core.folding import FoldingTree
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.mapreduce.combiners import SumCombiner
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

# Not a power of two: the initial window part-fills the folding tree, so a
# large shrink leaves live leaves straddling the root and the plain tree
# cannot fold down to the optimal height — the imbalance §3.2 targets.
WINDOW = 96
FOLLOW_UP_SLIDES = 12
SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)

CONTRACTION_PHASES = ("contraction", "memo_read", "memo_write")


def _leaf(tag: int, index: int, value: int) -> Partition:
    """A Matrix-like leaf: one shared aggregate plus unique keys."""
    return Partition({"total": value, ("u", tag, index): 1})


def _leaves(values, tag=0):
    return [_leaf(tag, i, v) for i, v in enumerate(values)]


def tree_scenario_work(tree, remove_count: int) -> float:
    """Work of the shrink update plus follow-up slides on a bare tree."""
    tree.initial_run(_leaves(range(WINDOW)))
    start = tree.meter.total()
    tree.advance(_leaves([1], tag=1), remove_count)
    for step in range(FOLLOW_UP_SLIDES):
        tree.advance(_leaves([step], tag=2 + step), 1)
    return tree.meter.total() - start


def tree_level_speedup(remove_percent: int) -> tuple[float, float, float]:
    removed = WINDOW * remove_percent // 100
    folding_work = tree_scenario_work(FoldingTree(SumCombiner()), removed)
    randomized_work = statistics.mean(
        tree_scenario_work(RandomizedFoldingTree(SumCombiner(), seed=seed), removed)
        for seed in SEEDS
    )
    return folding_work / randomized_work, folding_work, randomized_work


def app_level_speedup(spec, remove_percent: int) -> float:
    """Contraction-side work ratio through the full Slider engine."""

    def run(tree: str, seed: int) -> float:
        job = spec.make_job()
        config = SliderConfig(mode=WindowMode.VARIABLE, tree=tree, seed=seed)
        slider = Slider(job, WindowMode.VARIABLE, config=config)
        slider.initial_run(spec.make_splits(WINDOW, 17, 0))
        removed = WINDOW * remove_percent // 100
        offset = WINDOW
        total = 0.0
        for add_count, remove_count in [(1, removed)] + [(1, 1)] * 5:
            new_splits = spec.make_splits(add_count, 17, offset)
            offset += add_count
            report = slider.advance(new_splits, remove_count).report
            total += sum(
                report.breakdown.get(p, 0.0) for p in CONTRACTION_PHASES
            )
        return total

    folding = run("folding", 0)
    randomized = statistics.mean(run("randomized", seed) for seed in (0, 1, 2))
    return folding / randomized


def test_fig12_randomized_folding_tree(benchmark):
    speedup_25, f25, r25 = tree_level_speedup(25)
    speedup_50, f50, r50 = tree_level_speedup(50)
    app_rows = [
        [spec_name, app_level_speedup(APP_REGISTRY[spec_name], 50)]
        for spec_name in ("kmeans", "matrix")
    ]

    print()
    print(
        format_table(
            "Figure 12 — randomized vs plain folding tree "
            "(tree-level, key-accumulating partitions)",
            ["scenario", "folding work", "randomized work", "randomized speedup"],
            [
                ["25% remove, 1% add", f25, r25, speedup_25],
                ["50% remove, 1% add", f50, r50, speedup_50],
            ],
        )
    )
    print(
        format_table(
            "Context: app-level contraction-work ratio at 50% remove "
            "(small per-reducer partitions dilute the effect)",
            ["app", "randomized speedup"],
            app_rows,
        )
    )

    # Paper's shape: the large shrink is where randomization wins.
    assert speedup_50 > 1.0, speedup_50
    # The milder shrink gives comparable performance, below the 50% gain.
    assert 0.7 < speedup_25 < speedup_50, (speedup_25, speedup_50)
    # Structural claim behind the figure: after the big shrink the
    # randomized tree's height tracks the live window; the plain tree
    # cannot fold below the pre-shrink height.
    folding = FoldingTree(SumCombiner())
    folding.initial_run(_leaves(range(WINDOW)))
    folding.advance(_leaves([1], tag=1), WINDOW // 2)
    randomized_heights = []
    for seed in SEEDS:
        randomized = RandomizedFoldingTree(SumCombiner(), seed=seed)
        randomized.initial_run(_leaves(range(WINDOW)))
        randomized.advance(_leaves([1], tag=1), WINDOW // 2)
        randomized_heights.append(randomized.height)
    assert folding.height == 7
    assert statistics.mean(randomized_heights) < folding.height

    def randomized_scenario():
        return tree_scenario_work(
            RandomizedFoldingTree(SumCombiner(), seed=0), WINDOW // 2
        )

    benchmark.pedantic(randomized_scenario, rounds=1, iterations=1)
